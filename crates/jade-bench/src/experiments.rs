//! One function per experiment in the paper's Section 5. Each prints the
//! reproduced numbers next to the paper's published numbers (where the
//! paper publishes a table; figures print our series plus the qualitative
//! expectation the paper's plot shows).

use crate::apps::App;
use crate::harness::{header, row, Harness, PROCS};
use crate::paper_data;
use dsim::FaultPlan;
use jade_core::{
    check_conservation_per_tenant, check_lifecycle_per_tenant, Handle, LocalityMode, Metrics,
    TaggedEvent, TaskBuilder, TenantId,
};
use jade_threads::{
    JadeService, Outcome, Program, ServiceConfig, ShedPolicy, SubmitError, TenantOptions,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn print_table(title: &str, rows: &[(String, Vec<f64>)], paper: Option<&paper_data::ExecTable>) {
    println!("\n{}", header(title));
    for (label, vals) in rows {
        println!("{}", row(label, vals));
    }
    if let Some(p) = paper {
        println!("  --- paper ({}):", p.label);
        for (label, vals) in p.rows {
            let v: Vec<f64> = vals.iter().map(|x| x.unwrap_or(f64::NAN)).collect();
            println!("{}", row(&format!("paper {label}"), &v));
        }
    }
}

/// Tables 1 and 6: serial and stripped times. The stripped times are the
/// calibration anchors of the per-application cost models; we report the
/// model's reproduced stripped time (charged work × calibrated rate), which
/// by construction lands on the paper's value at full scale.
pub fn table_serial(h: &mut Harness, dash: bool) {
    let (title, rows) = if dash {
        (
            "Table 1: Serial and Stripped Execution Times on DASH (seconds)",
            &paper_data::TABLE1_DASH,
        )
    } else {
        (
            "Table 6: Serial and Stripped Execution Times on the iPSC/860 (seconds)",
            &paper_data::TABLE6_IPSC,
        )
    };
    println!("\n{title}");
    println!(
        "{:>16} | {:>12} {:>12} {:>14} {:>14}",
        "app", "paper serial", "paper strip", "model strip", "model 1-proc"
    );
    for (app, paper) in App::ALL.iter().zip(rows.iter()) {
        let trace = h.trace(*app, 1);
        let spo = if dash {
            app.dash_sec_per_op(&trace)
        } else {
            app.ipsc_sec_per_op(&trace)
        };
        let stripped = trace.total_work() * spo;
        let one_proc = if dash {
            h.dash(*app, 1, LocalityMode::Locality).exec_time_s
        } else {
            h.ipsc(*app, 1, LocalityMode::Locality).exec_time_s
        };
        println!(
            "{:>16} | {:>12.2} {:>12.2} {:>14.2} {:>14.2}",
            paper.app, paper.serial, paper.stripped, stripped, one_proc
        );
    }
}

/// Tables 2–5 (DASH) and 7–10 (iPSC): execution times at each locality
/// optimization level.
pub fn table_exec(h: &mut Harness, app: App, dash: bool) {
    let paper = match (app, dash) {
        (App::Water, true) => paper_data::table2(),
        (App::StringApp, true) => paper_data::table3(),
        (App::Ocean, true) => paper_data::table4(),
        (App::Cholesky, true) => paper_data::table5(),
        (App::Water, false) => paper_data::table7(),
        (App::StringApp, false) => paper_data::table8(),
        (App::Ocean, false) => paper_data::table9(),
        (App::Cholesky, false) => paper_data::table10(),
        (App::Pagerank | App::Halo, _) => {
            panic!("no paper table for irregular app {}", app.name())
        }
    };
    let machine = if dash { "DASH" } else { "iPSC/860" };
    let mut rows = Vec::new();
    for mode in h.modes_for(app) {
        let vals: Vec<f64> = PROCS
            .iter()
            .map(|&p| {
                if dash {
                    h.dash(app, p, mode).exec_time_s
                } else {
                    h.ipsc(app, p, mode).exec_time_s
                }
            })
            .collect();
        rows.push((mode.to_string(), vals));
    }
    print_table(
        &format!(
            "Execution Times for {} on {} (seconds) [reproduced]",
            app.name(),
            machine
        ),
        &rows,
        Some(&paper),
    );
}

/// Figures 2–5 (DASH) and 12–15 (iPSC): task locality percentage.
pub fn fig_locality(h: &mut Harness, app: App, dash: bool) {
    let machine = if dash { "DASH" } else { "iPSC/860" };
    let fig = match (app, dash) {
        (App::Water, true) => 2,
        (App::StringApp, true) => 3,
        (App::Ocean, true) => 4,
        (App::Cholesky, true) => 5,
        (App::Water, false) => 12,
        (App::StringApp, false) => 13,
        (App::Ocean, false) => 14,
        (App::Cholesky, false) => 15,
        (App::Pagerank | App::Halo, _) => {
            panic!("no paper figure for irregular app {}", app.name())
        }
    };
    let mut rows = Vec::new();
    for mode in h.modes_for(app) {
        let vals: Vec<f64> = PROCS
            .iter()
            .map(|&p| {
                if dash {
                    h.dash(app, p, mode).locality_pct
                } else {
                    h.ipsc(app, p, mode).locality_pct
                }
            })
            .collect();
        rows.push((mode.to_string(), vals));
    }
    print_table(
        &format!(
            "Figure {fig}: Task Locality Percentage for {} on {}",
            app.name(),
            machine
        ),
        &rows,
        None,
    );
    let expect = match (app, dash) {
        (App::Water | App::StringApp, _) => {
            "paper: Locality = 100%, No Locality drops toward ~1/P"
        }
        (App::Cholesky, false) => {
            "paper: Task Placement ~92% (first touch targets main), Locality < 100%, No Locality low"
        }
        _ => "paper: Task Placement = 100%, Locality substantially below 100%, No Locality low",
    };
    println!("  {expect}");
}

/// Figures 6–9: total task execution time on DASH (includes the
/// communication performed inside tasks).
pub fn fig_taskexec(h: &mut Harness, app: App) {
    let fig = match app {
        App::Water => 6,
        App::StringApp => 7,
        App::Ocean => 8,
        App::Cholesky => 9,
        App::Pagerank | App::Halo => {
            panic!("no paper figure for irregular app {}", app.name())
        }
    };
    let mut rows = Vec::new();
    for mode in h.modes_for(app) {
        let vals: Vec<f64> = PROCS
            .iter()
            .map(|&p| h.dash(app, p, mode).task_time_s)
            .collect();
        rows.push((mode.to_string(), vals));
    }
    print_table(
        &format!(
            "Figure {fig}: Total Task Execution Time for {} on DASH (seconds)",
            app.name()
        ),
        &rows,
        None,
    );
    println!(
        "  paper: rises with processors (more remote misses); small relative rise for \
         Water/String, large for Ocean/Panel Cholesky, ordered NoLocality > Locality > Placement"
    );
}

/// Figures 10, 11 (DASH) and 20, 21 (iPSC): task management percentage via
/// the work-free methodology, at the Task Placement level.
pub fn fig_mgmt(h: &mut Harness, app: App, dash: bool) {
    let fig = match (app, dash) {
        (App::Ocean, true) => 10,
        (App::Cholesky, true) => 11,
        (App::Ocean, false) => 20,
        _ => 21,
    };
    let machine = if dash { "DASH" } else { "iPSC/860" };
    let vals: Vec<f64> = PROCS
        .iter()
        .map(|&p| {
            let (full, free) = if dash {
                let full = h.dash(app, p, LocalityMode::TaskPlacement).exec_time_s;
                let free = h
                    .dash_with(app, p, LocalityMode::TaskPlacement, |c| c.work_free = true)
                    .exec_time_s;
                (full, free)
            } else {
                let full = h.ipsc(app, p, LocalityMode::TaskPlacement).exec_time_s;
                let free = h
                    .ipsc_with(app, p, LocalityMode::TaskPlacement, |c| c.work_free = true)
                    .exec_time_s;
                (full, free)
            };
            100.0 * free / full
        })
        .collect();
    print_table(
        &format!(
            "Figure {fig}: Task Management Percentage for {} on {} (work-free / full)",
            app.name(),
            machine
        ),
        &[("Task Placement".to_string(), vals)],
        None,
    );
    println!("  paper: rises steeply with processors; higher on the iPSC than on DASH");
}

/// Figures 16–19: communication-to-computation ratio on the iPSC/860
/// (Mbytes of shared-object messages per second of task execution).
pub fn fig_commratio(h: &mut Harness, app: App) {
    let fig = match app {
        App::Water => 16,
        App::StringApp => 17,
        App::Ocean => 18,
        App::Cholesky => 19,
        App::Pagerank | App::Halo => {
            panic!("no paper figure for irregular app {}", app.name())
        }
    };
    let mut rows = Vec::new();
    for mode in h.modes_for(app) {
        let vals: Vec<f64> = PROCS
            .iter()
            .map(|&p| h.ipsc(app, p, mode).comm_to_comp)
            .collect();
        rows.push((mode.to_string(), vals));
    }
    println!(
        "\n{}",
        header(&format!(
            "Figure {fig}: Communication to Computation Ratio for {} on the iPSC/860 (Mbytes/s)",
            app.name()
        ))
    );
    for (label, vals) in &rows {
        let mut s = format!("{label:>16} |");
        for v in vals {
            s.push_str(&format!(" {v:>9.4}"));
        }
        println!("{s}");
    }
    println!(
        "  paper: Water/String ratios tiny (< 0.1); Ocean/Panel Cholesky large (up to ~24), \
         lower ratios at higher locality levels"
    );
}

/// Tables 11–14: adaptive broadcast on/off on the iPSC/860 (locality,
/// replication and concurrent fetch on; latency hiding off).
pub fn table_bcast(h: &mut Harness, app: App) {
    let paper = paper_data::bcast_table(app.name());
    let mode = if app.has_placement() {
        LocalityMode::TaskPlacement
    } else {
        LocalityMode::Locality
    };
    let mut rows = Vec::new();
    for (label, ab) in [("Adaptive Bcast", true), ("No Adapt Bcast", false)] {
        let vals: Vec<f64> = PROCS
            .iter()
            .map(|&p| {
                h.ipsc_with(app, p, mode, |c| c.adaptive_broadcast = ab)
                    .exec_time_s
            })
            .collect();
        rows.push((label.to_string(), vals));
    }
    print_table(
        &format!(
            "Adaptive Broadcast for {} on the iPSC/860 (seconds) [reproduced]",
            app.name()
        ),
        &rows,
        Some(&paper),
    );
}

/// Section 5.3's quantitative analysis: sizes and distribution times of the
/// widely-read objects, and mean parallel phase lengths with and without
/// adaptive broadcast, at 32 processors.
pub fn bcast_analysis(h: &mut Harness) {
    println!("\nSection 5.3 analysis: object distribution at 32 processors");
    let machine = dsim::IpscSpec::paper(32);
    for (app, bytes, paper_send, paper_bcast) in [
        (App::Water, 165_888usize, 0.07, 0.31),
        (App::StringApp, 383_528, 0.16, 0.70),
    ] {
        let one = machine.message_time(bytes, 0, 1).as_secs_f64();
        let all = 31.0 * one;
        let bcast = machine.broadcast_time(bytes).as_secs_f64();
        println!(
            "  {:>7}: object {:>7} B; serial send {:.3}s (paper {:.2}), all-31 {:.2}s, \
             broadcast {:.3}s (paper {:.2})",
            app.name(),
            bytes,
            one,
            paper_send,
            all,
            bcast,
            paper_bcast
        );
        let with = h.ipsc_with(app, 32, LocalityMode::Locality, |c| {
            c.adaptive_broadcast = true
        });
        let without = h.ipsc_with(app, 32, LocalityMode::Locality, |c| {
            c.adaptive_broadcast = false
        });
        println!(
            "           mean parallel phase: {:.2}s with broadcast / {:.2}s without \
             (paper: 7.3/5.4 Water, 108/106 String); broadcasts performed: {}",
            with.mean_parallel_phase_s, without.mean_parallel_phase_s, with.broadcasts
        );
    }
}

/// Section 5.1: replication. Disabling read replication serializes every
/// application (all tasks read at least one common object).
pub fn replication(h: &mut Harness) {
    println!("\nSection 5.1: replication (iPSC/860, 8 processors, Locality level)");
    println!(
        "{:>16} | {:>12} {:>14} {:>8}",
        "app", "replication", "no replication", "slowdown"
    );
    for app in App::ALL {
        let on = h.ipsc(app, 8, LocalityMode::Locality).exec_time_s;
        let off = h
            .ipsc_with(app, 8, LocalityMode::Locality, |c| c.replication = false)
            .exec_time_s;
        println!(
            "{:>16} | {:>12.2} {:>14.2} {:>7.2}x",
            app.name(),
            on,
            off,
            off / on
        );
    }
    println!("  paper: eliminating replication would serialize all of the applications");
}

/// Section 5.4: hiding latency with excess concurrency — Panel Cholesky
/// with the target task count set to two, plus the latency/task-time
/// imbalance analysis.
pub fn latency_hiding(h: &mut Harness) {
    println!("\nSection 5.4: latency hiding (Panel Cholesky on the iPSC/860, Locality level)");
    println!(
        "{:>16} | {}",
        "target tasks",
        PROCS.map(|p| format!("{p:>9}")).join(" ")
    );
    for target in [1usize, 2] {
        let vals: Vec<f64> = PROCS
            .iter()
            .map(|&p| {
                // Locality level: explicitly placed tasks bypass the target
                // count entirely, so the knob only acts here.
                h.ipsc_with(App::Cholesky, p, LocalityMode::Locality, |c| {
                    c.target_tasks = target
                })
                .exec_time_s
            })
            .collect();
        println!("{}", row(&format!("{target}"), &vals));
    }
    let r = h.ipsc(App::Cholesky, 16, LocalityMode::TaskPlacement);
    let mean_task = r.task_time_s / r.tasks_executed.max(1) as f64;
    let mean_obj = r.object_latency_s / r.fetches.max(1) as f64;
    println!(
        "  at 16 procs: mean object transfer latency {:.2} ms vs mean task time {:.2} ms \
         (ratio {:.2}; paper reports the latency at over twice the task time)",
        mean_obj * 1e3,
        mean_task * 1e3,
        mean_obj / mean_task
    );
    println!("  paper: turning the optimization on has virtually no effect on performance");
}

/// Section 5.5: concurrent fetches — the ratio of summed object latency to
/// summed task latency at the highest locality level, plus the serial-fetch
/// ablation.
pub fn concurrent_fetch(h: &mut Harness) {
    println!("\nSection 5.5: concurrent fetches (iPSC/860, highest locality level)");
    println!(
        "{:>16} | {:>8} {:>14} {:>14} {:>8} {:>12}",
        "app", "procs", "object lat (s)", "task lat (s)", "ratio", "serial-fetch"
    );
    for app in App::ALL {
        let mode = if app.has_placement() {
            LocalityMode::TaskPlacement
        } else {
            LocalityMode::Locality
        };
        for procs in [8usize, 32] {
            let r = h.ipsc(app, procs, mode);
            let ratio = if r.task_latency_s > 0.0 {
                r.object_latency_s / r.task_latency_s
            } else {
                1.0
            };
            let serial = h
                .ipsc_with(app, procs, mode, |c| c.concurrent_fetches = false)
                .exec_time_s;
            println!(
                "{:>16} | {:>8} {:>14.3} {:>14.3} {:>8.3} {:>11.2}s",
                app.name(),
                procs,
                r.object_latency_s,
                r.task_latency_s,
                ratio,
                serial
            );
        }
    }
    println!(
        "  paper: the ratio is very close to one for all applications — almost all tasks \
         fetch at most one remote object per communication point"
    );
}

/// Ablations of the design choices DESIGN.md Section 6 calls out.
pub fn ablations(h: &mut Harness) {
    println!("\nAblation: eager update protocol (paper Section 6, iPSC/860, 16 procs)");
    println!("  paper: an update-protocol Jade implementation helped regular applications");
    println!("  (Water, String) and degraded irregular ones by generating excess traffic.");
    println!(
        "{:>16} | {:>10} {:>10} {:>12} {:>12}",
        "app", "demand (s)", "eager (s)", "demand MB", "eager MB"
    );
    for app in App::ALL {
        let mode = if app.has_placement() {
            LocalityMode::TaskPlacement
        } else {
            LocalityMode::Locality
        };
        let d = h.ipsc(app, 16, mode);
        let e = h.ipsc_with(app, 16, mode, |c| c.eager_update = true);
        println!(
            "{:>16} | {:>10.2} {:>10.2} {:>12.1} {:>12.1}",
            app.name(),
            d.exec_time_s,
            e.exec_time_s,
            d.comm_bytes as f64 / 1e6,
            e.comm_bytes as f64 / 1e6
        );
    }

    println!("\nAblation: locality-object choice (first vs last declared, DASH, 16 procs)");
    for app in [App::Ocean, App::Cholesky] {
        let normal = h.dash(app, 16, LocalityMode::Locality);
        let trace = h.trace(app, 16);
        let mut flipped = (*trace).clone();
        for t in &mut flipped.tasks {
            let decls: Vec<_> = t.spec.decls().iter().rev().copied().collect();
            t.spec = decls.into_iter().collect();
        }
        let spo = app.dash_sec_per_op(&flipped);
        let r = jade_dash::run(
            &flipped,
            &jade_dash::DashConfig::paper(16, LocalityMode::Locality, spo),
        );
        println!(
            "  {:>16}: first-declared {:.2}s ({:.0}% locality) | last-declared {:.2}s ({:.0}% locality)",
            app.name(),
            normal.exec_time_s,
            normal.locality_pct,
            r.exec_time_s,
            r.locality_pct
        );
    }

    println!("\nAblation: serial vs concurrent fetches (iPSC/860, 16 procs)");
    for app in App::ALL {
        let mode = if app.has_placement() {
            LocalityMode::TaskPlacement
        } else {
            LocalityMode::Locality
        };
        let conc = h.ipsc(app, 16, mode).exec_time_s;
        let ser = h
            .ipsc_with(app, 16, mode, |c| c.concurrent_fetches = false)
            .exec_time_s;
        println!(
            "  {:>16}: concurrent {conc:.2}s | serial {ser:.2}s",
            app.name()
        );
    }
}

/// Per-processor utilization profile: where each processor's time goes
/// (application work / communication / task management / idle), the
/// breakdown behind the paper's bottleneck arguments. Rendered as text bars.
pub fn utilization(h: &mut Harness, app: App, procs: usize) {
    let mode = if app.has_placement() {
        LocalityMode::TaskPlacement
    } else {
        LocalityMode::Locality
    };
    for machine in ["DASH", "iPSC/860"] {
        let (exec, busy) = if machine == "DASH" {
            let r = h.dash(app, procs, mode);
            (r.exec_time_s, r.per_proc_busy)
        } else {
            let r = h.ipsc(app, procs, mode);
            (r.exec_time_s, r.per_proc_busy)
        };
        println!(
            "\n{} on {} ({} procs, {:.2}s): per-processor time  [#=app  ~=comm  m=mgmt  .=idle]",
            app.name(),
            machine,
            procs,
            exec
        );
        const W: usize = 60;
        for (p, (a, c, m)) in busy.iter().enumerate() {
            let cell = |x: f64| ((x / exec) * W as f64).round() as usize;
            let (na, nc, nm) = (cell(*a), cell(*c), cell(*m));
            let idle = W.saturating_sub(na + nc + nm);
            println!(
                "  p{p:<3} |{}{}{}{}| {:>5.1}% busy",
                "#".repeat(na),
                "~".repeat(nc),
                "m".repeat(nm),
                ".".repeat(idle),
                100.0 * (a + c + m) / exec
            );
        }
    }
}

/// The third platform of the paper's introduction: a heterogeneous
/// collection of workstations on a shared Ethernet. Jade programs run
/// unmodified; the dynamic load balancer adapts to machine speeds.
pub fn heterogeneous(h: &mut Harness) {
    println!("\nHeterogeneous workstations (shared 10-Mbit medium)");
    println!("  machines: speeds 1.0 / 1.0 / 2.0 / 2.0 / 4.0 (aggregate 10.0)");
    let speeds = vec![1.0, 1.0, 2.0, 2.0, 4.0];
    let agg: f64 = speeds.iter().sum();
    // First, the clean case: plenty of independent coarse tasks with small
    // objects. The balancer's speed adaptivity is pure here.
    {
        let mut b = jade_core::TraceBuilder::new();
        let objs: Vec<_> = (0..200)
            .map(|i| b.object(&format!("w{i}"), 64, Some(i % 5)))
            .collect();
        for &o in &objs {
            let mut s = jade_core::AccessSpec::new();
            s.wr(o);
            b.task(s, 1.0);
        }
        let trace = b.build();
        let hetero = jade_ipsc::run(
            &trace,
            &jade_ipsc::IpscConfig::workstations(speeds.clone(), 1.0),
        );
        let uniform = jade_ipsc::run(
            &trace,
            &jade_ipsc::IpscConfig::workstations(vec![1.0; 5], 1.0),
        );
        println!(
            "  200 independent 1s tasks: heterogeneous {:.1}s vs uniform {:.1}s (ideal {:.1} vs 40.0)",
            hetero.exec_time_s,
            uniform.exec_time_s,
            200.0 / agg
        );
    }
    // Panel Cholesky has thousands of tasks — surplus work the balancer can
    // shift toward the fast machines.
    let app = App::Cholesky;
    let trace = h.trace(app, speeds.len());
    let spo = app.ipsc_sec_per_op(&trace);
    let serial = trace.total_work() * spo;
    let eth = jade_ipsc::run(
        &trace,
        &jade_ipsc::IpscConfig::workstations(speeds.clone(), spo),
    );
    println!(
        "  Cholesky ({} tasks) on the Ethernet cluster: {:.1}s vs {serial:.1}s serial —\n\
         the shared 10-Mbit wire serializes every panel transfer; fine-grained\n\
         applications lose on a network of workstations no matter the speeds",
        trace.task_count(),
        eth.exec_time_s
    );
    // Same heterogeneous machines on a switched (hypercube-class) network:
    // now the balancer's speed-adaptivity is visible.
    let mut fast_net = jade_ipsc::IpscConfig::workstations(speeds.clone(), spo);
    fast_net.shared_medium = false;
    fast_net.machine = dsim::IpscSpec::paper(speeds.len());
    let mut fast_uniform = fast_net.clone();
    fast_uniform.speed_factors = Some(vec![1.0; 5]);
    let hetero = jade_ipsc::run(&trace, &fast_net);
    let uniform = jade_ipsc::run(&trace, &fast_uniform);
    println!(
        "  same machines on a switched network: heterogeneous {:.1}s vs uniform {:.1}s\n\
         (aggregate speed 10 vs 5: the balancer feeds fast machines more tasks;\n\
          ideal aggregate bound {:.1}s)",
        hetero.exec_time_s,
        uniform.exec_time_s,
        serial / agg
    );
    // Water's grain is matched to the processor count (one task per machine
    // per phase), so its phases are bound by the slowest machine — grain,
    // not scheduling, limits heterogeneity there.
    let wtrace = h.trace(App::Water, speeds.len());
    let wspo = App::Water.ipsc_sec_per_op(&wtrace);
    let wh = jade_ipsc::run(&wtrace, &jade_ipsc::IpscConfig::workstations(speeds, wspo));
    let wu = jade_ipsc::run(
        &wtrace,
        &jade_ipsc::IpscConfig::workstations(vec![1.0; 5], wspo),
    );
    println!(
        "  Water (grain = processor count): heterogeneous {:.1}s vs uniform {:.1}s —\n\
         each phase waits for the slowest machine's one task",
        wh.exec_time_s, wu.exec_time_s
    );
}

/// Fault sweep: run one application per backend under the given fault plan
/// and check the headline robustness invariant — the faulty run produces
/// bit-identical application results to the fault-free run, differing only
/// in timing and retry/re-execution counters. Returns `Err` on any
/// divergence (the `repro` binary exits non-zero on it, so CI can gate on
/// this).
pub fn fault_sweep(h: &mut Harness, plan: FaultPlan) -> Result<(), String> {
    println!("\nFault sweep (seed {}):", plan.seed);
    println!(
        "  plan: drop={} dup={} delay={} reorder={} stall={} fail={:?} panic={}",
        plan.drop_p,
        plan.dup_p,
        plan.delay_p,
        plan.reorder_p,
        plan.stall_p,
        plan.fail_proc,
        plan.panic_p
    );

    // iPSC/860: the full message-loss/recovery protocol.
    {
        let app = App::Water;
        let procs = 8;
        let trace = h.trace(app, procs);
        let spo = app.ipsc_sec_per_op(&trace);
        let clean_cfg = jade_ipsc::IpscConfig::paper(procs, LocalityMode::Locality, spo);
        let mut faulty_cfg = clean_cfg.clone();
        faulty_cfg.faults = plan;
        let clean = jade_ipsc::try_run(&trace, &clean_cfg)
            .map_err(|e| format!("ipsc fault-free run failed: {e}"))?;
        let faulty = jade_ipsc::try_run(&trace, &faulty_cfg)
            .map_err(|e| format!("ipsc faulty run failed: {e}"))?;
        println!(
            "  iPSC/860  {} x{procs}: {:.2}s -> {:.2}s | dropped {} retried {} \
             discarded {} stalls {} re-executed {}",
            app.name(),
            clean.exec_time_s,
            faulty.exec_time_s,
            faulty.msgs_dropped,
            faulty.msgs_retried,
            faulty.msgs_discarded,
            faulty.stalls,
            faulty.tasks_reexecuted
        );
        if faulty.final_versions != clean.final_versions {
            return Err(format!(
                "ipsc: final object versions diverged under faults ({} objects differ)",
                faulty
                    .final_versions
                    .iter()
                    .zip(&clean.final_versions)
                    .filter(|(a, b)| a != b)
                    .count()
            ));
        }
        let completed = faulty.tasks_executed as u64 - faulty.tasks_reexecuted;
        if completed != clean.tasks_executed as u64 {
            return Err(format!(
                "ipsc: {completed} tasks completed under faults vs {} fault-free",
                clean.tasks_executed
            ));
        }
    }

    // DASH: shared memory has no messages to lose; the sweep maps the
    // plan's drop rate onto transient stalls when no stall component was
    // given, so the scheduler's graceful degradation is still exercised.
    {
        let app = App::Ocean;
        let procs = 8;
        let mut dash_plan = plan;
        if dash_plan.stall_p == 0.0 && dash_plan.drop_p > 0.0 {
            dash_plan.stall_p = dash_plan.drop_p;
            dash_plan.stall = dsim::SimDuration::from_secs_f64(0.002);
        }
        let clean = h.dash(app, procs, LocalityMode::Locality);
        let faulty = h.dash_with(app, procs, LocalityMode::Locality, |c| c.faults = dash_plan);
        println!(
            "  DASH      {} x{procs}: {:.2}s -> {:.2}s | stalls {} ({:.3}s)",
            app.name(),
            clean.exec_time_s,
            faulty.exec_time_s,
            faulty.stalls,
            faulty.stall_time_s
        );
        if faulty.tasks_executed != clean.tasks_executed {
            return Err(format!(
                "dash: {} tasks executed under stalls vs {} fault-free",
                faulty.tasks_executed, clean.tasks_executed
            ));
        }
    }

    // jade-threads: real parallel execution with injected worker crashes.
    // Message loss has no analog on threads either, so the drop rate maps
    // onto the per-attempt crash probability when no panic rate was given.
    {
        let workers = 4;
        let panic_p = if plan.panic_p > 0.0 {
            plan.panic_p
        } else {
            plan.drop_p
        };
        let wcfg = jade_apps::water::WaterConfig::small(workers);
        let mut clean_rt = jade_threads::ThreadRuntime::new(workers);
        let clean = jade_apps::water::run_on(&mut clean_rt, &wcfg);
        let mut faulty_rt = jade_threads::ThreadRuntime::new(workers);
        faulty_rt.inject_faults(FaultPlan {
            panic_p,
            seed: plan.seed,
            ..FaultPlan::none()
        });
        let faulty = jade_apps::water::run_on(&mut faulty_rt, &wcfg);
        let stats = faulty_rt.last_stats();
        println!(
            "  threads   Water x{workers} (crash p={panic_p}): {} attempts, {} recoveries",
            stats.executed, stats.recoveries
        );
        if faulty != clean {
            return Err(format!(
                "threads: Water output diverged under injected crashes \
                 ({faulty:?} vs {clean:?})"
            ));
        }
    }

    println!("  fault sweep passed: results bit-identical to fault-free runs");
    Ok(())
}

/// Checkpoint sweep: cross the fault plan with checkpoint intervals and
/// check the tentpole invariant — any fail-stop plan at any checkpoint
/// interval produces results bit-identical to the fault-free run, and
/// checkpoints never cause more re-execution than the checkpoint-free
/// recovery path. Prints one row per interval with the capture/restore
/// economics. Returns `Err` on any divergence (the `repro` binary exits
/// non-zero, so CI gates on this).
pub fn checkpoint_sweep(h: &mut Harness, plan: FaultPlan, intervals: &[f64]) -> Result<(), String> {
    println!("\nCheckpoint sweep (seed {}):", plan.seed);

    // iPSC/860: sim-time checkpoint intervals against a fail-stop.
    {
        let app = App::Water;
        let procs = 8;
        let trace = h.trace(app, procs);
        let spo = app.ipsc_sec_per_op(&trace);
        let clean_cfg = jade_ipsc::IpscConfig::paper(procs, LocalityMode::Locality, spo);
        let clean = jade_ipsc::try_run(&trace, &clean_cfg)
            .map_err(|e| format!("ipsc fault-free run failed: {e}"))?;
        let mut base_plan = plan;
        base_plan.checkpoint = None;
        if base_plan.fail_proc.is_none() {
            // The sweep is about fail-stop recovery: without one in the
            // plan, inject a mid-run failure of the last processor.
            base_plan.fail_proc = Some(procs - 1);
            base_plan.fail_at = dsim::SimDuration::from_secs_f64(0.4 * clean.exec_time_s);
            println!(
                "  (plan has no fail-stop: adding fail={}@{:.2} so recovery is exercised)",
                procs - 1,
                0.4 * clean.exec_time_s
            );
        }
        println!(
            "  iPSC/860 {} x{procs} (clean {:.2}s):\n  {:>8} {:>6} {:>12} {:>12} {:>9} {:>7} {:>9}",
            app.name(),
            clean.exec_time_s,
            "ckpt(s)",
            "taken",
            "ckpt bytes",
            "restore B",
            "ckpt-hit",
            "re-exec",
            "exec(s)"
        );
        let mut base_cfg = clean_cfg.clone();
        base_cfg.faults = base_plan;
        let base = jade_ipsc::try_run(&trace, &base_cfg)
            .map_err(|e| format!("ipsc checkpoint-free faulty run failed: {e}"))?;
        let report = |label: &str, r: &jade_ipsc::IpscRunResult| {
            println!(
                "  {label:>8} {:>6} {:>12} {:>12} {:>9} {:>7} {:>9.2}",
                r.checkpoints,
                r.checkpoint_bytes,
                r.restore_bytes,
                r.checkpoint_restores,
                r.tasks_reexecuted,
                r.exec_time_s
            );
        };
        report("none", &base);
        if base.final_versions != clean.final_versions {
            return Err("ipsc: results diverged before any checkpointing".into());
        }
        for &iv in intervals {
            let mut cfg = clean_cfg.clone();
            cfg.faults = base_plan.with_checkpoint(dsim::SimDuration::from_secs_f64(iv));
            let r = jade_ipsc::try_run(&trace, &cfg)
                .map_err(|e| format!("ipsc run with ckpt={iv} failed: {e}"))?;
            report(&format!("{iv}"), &r);
            if r.final_versions != clean.final_versions {
                return Err(format!(
                    "ipsc: final object versions diverged at checkpoint interval {iv}"
                ));
            }
            let completed = r.tasks_executed as u64 - r.tasks_reexecuted;
            if completed != clean.tasks_executed as u64 {
                return Err(format!(
                    "ipsc: {completed} tasks completed at ckpt={iv} vs {} fault-free",
                    clean.tasks_executed
                ));
            }
            if r.tasks_reexecuted > base.tasks_reexecuted {
                return Err(format!(
                    "ipsc: ckpt={iv} re-executed {} tasks vs {} without checkpoints",
                    r.tasks_reexecuted, base.tasks_reexecuted
                ));
            }
        }
    }

    // jade-threads: the same intervals map to completed-task counts.
    {
        let workers = 4;
        let panic_p = if plan.panic_p > 0.0 {
            plan.panic_p
        } else {
            0.2
        };
        let wcfg = jade_apps::water::WaterConfig::small(workers);
        let mut clean_rt = jade_threads::ThreadRuntime::new(workers);
        let clean = jade_apps::water::run_on(&mut clean_rt, &wcfg);
        let crash_plan = FaultPlan {
            panic_p,
            seed: plan.seed,
            ..FaultPlan::none()
        };
        let mut base_rt = jade_threads::ThreadRuntime::new(workers);
        base_rt.inject_faults(crash_plan);
        let base_out = jade_apps::water::run_on(&mut base_rt, &wcfg);
        let base = base_rt.last_stats();
        if base_out != clean {
            return Err("threads: results diverged before any checkpointing".into());
        }
        for &iv in intervals {
            let every = (iv.round() as usize).max(1);
            let mut rt = jade_threads::ThreadRuntime::new(workers);
            rt.inject_faults(crash_plan);
            rt.checkpoint_every(every);
            let out = jade_apps::water::run_on(&mut rt, &wcfg);
            let s = rt.last_stats();
            println!(
                "  threads  Water x{workers} ckpt every {every} tasks: {} checkpoints, \
                 {} recoveries ({} from checkpoint)",
                s.checkpoints, s.recoveries, s.checkpoint_restores
            );
            if out != clean {
                return Err(format!(
                    "threads: Water output diverged at checkpoint interval {every}"
                ));
            }
            if s.recoveries > base.recoveries {
                return Err(format!(
                    "threads: ckpt every {every} recovered {} tasks vs {} without",
                    s.recoveries, base.recoveries
                ));
            }
        }
    }

    println!("  checkpoint sweep passed: bit-identical results, re-execution bounded");
    Ok(())
}

/// Aggregation sweep (DESIGN.md §15): run the two irregular applications
/// with the inspector/executor fetch-aggregation pass off and on, and
/// check the tentpole invariants — coalescing changes message *counts*
/// only, never the application result or the object bytes on the wire.
/// The headline gate: on PageRank the iPSC message count must drop by at
/// least 2× (the gather tasks read ~3 contribution buckets per owner, so
/// one bundle replaces ~3 request/reply pairs). Returns `Err` on any
/// divergence or a reduction below the gate, so CI can grep the PASS
/// marker and gate on the exit status.
pub fn aggregation_sweep(h: &mut Harness) -> Result<(), String> {
    println!(
        "\n{}",
        header("Aggregation sweep: iPSC/860 message coalescing")
    );
    let procs_sweep = [2usize, 4, 8, 16];
    let mut pagerank_msgs = (0u64, 0u64);
    for app in App::IRREGULAR {
        for &procs in &procs_sweep {
            let off = h.ipsc(app, procs, LocalityMode::TaskPlacement);
            let on = h.ipsc_with(app, procs, LocalityMode::TaskPlacement, |c| {
                c.aggregate_fetches = true
            });
            // Physical messages carrying the fetch protocol: one request
            // plus one reply per uncoalesced fetch; one of each per bundle.
            let msgs_off = off.requests + off.fetch_messages;
            let msgs_on = on.requests + on.fetch_messages;
            let reduction = msgs_off as f64 / (msgs_on.max(1)) as f64;
            println!(
                "  {:>8} x{procs:<2}: msgs {msgs_off} -> {msgs_on} ({reduction:.1}x) | \
                 bundles {} carrying {} objects | bytes {} -> {} | {:.2}s -> {:.2}s",
                app.name(),
                on.agg_fetches,
                on.agg_objects,
                off.comm_bytes,
                on.comm_bytes,
                off.exec_time_s,
                on.exec_time_s
            );
            if on.final_versions != off.final_versions {
                return Err(format!(
                    "{} x{procs}: final object versions diverged with aggregation on",
                    app.name()
                ));
            }
            if on.tasks_executed != off.tasks_executed {
                return Err(format!(
                    "{} x{procs}: {} tasks executed with aggregation vs {} without",
                    app.name(),
                    on.tasks_executed,
                    off.tasks_executed
                ));
            }
            // Coalescing changes when replies land, which perturbs the
            // redundant-fetch elision window between same-processor tasks
            // (in both directions), so the byte totals agree only up to
            // that jitter. Exact within-run conservation — every coalesced
            // payload byte attributed to its object and summing to the
            // metrics total — is pinned by tests/aggregation.rs.
            let (lo, hi) = (
                off.comm_bytes.min(on.comm_bytes),
                off.comm_bytes.max(on.comm_bytes),
            );
            if (hi - lo) * 10 > off.comm_bytes {
                return Err(format!(
                    "{} x{procs}: object bytes not conserved ({} with aggregation vs \
                     {} without; > 10% apart)",
                    app.name(),
                    on.comm_bytes,
                    off.comm_bytes
                ));
            }
            if procs >= 4 && msgs_on >= msgs_off {
                return Err(format!(
                    "{} x{procs}: aggregation did not reduce messages ({msgs_off} -> {msgs_on})",
                    app.name()
                ));
            }
            if app == App::Pagerank && procs > 1 {
                pagerank_msgs.0 += msgs_off;
                pagerank_msgs.1 += msgs_on;
            }
        }
    }

    // DASH: same toggle, but shared memory has no messages to count — the
    // win is streamed cache-line transfers, so the gate is exec time only
    // improving (never regressing) with identical bytes moved.
    for app in App::IRREGULAR {
        for &procs in &[4usize, 8] {
            let off = h.dash(app, procs, LocalityMode::TaskPlacement);
            let on = h.dash_with(app, procs, LocalityMode::TaskPlacement, |c| {
                c.aggregate_fetches = true
            });
            println!(
                "  {:>8} x{procs:<2} DASH: {:.2}s -> {:.2}s | bytes {} -> {}",
                app.name(),
                off.exec_time_s,
                on.exec_time_s,
                off.bytes_moved,
                on.bytes_moved
            );
            if on.tasks_executed != off.tasks_executed {
                return Err(format!(
                    "{} x{procs} DASH: task count changed with aggregation",
                    app.name()
                ));
            }
            if on.bytes_moved != off.bytes_moved {
                return Err(format!(
                    "{} x{procs} DASH: bytes moved changed ({} vs {})",
                    app.name(),
                    on.bytes_moved,
                    off.bytes_moved
                ));
            }
            if on.exec_time_s > off.exec_time_s + 1e-9 {
                return Err(format!(
                    "{} x{procs} DASH: aggregation regressed exec time \
                     ({:.4}s vs {:.4}s)",
                    app.name(),
                    on.exec_time_s,
                    off.exec_time_s
                ));
            }
        }
    }

    let pagerank_reduction = pagerank_msgs.0 as f64 / (pagerank_msgs.1.max(1)) as f64;
    if pagerank_reduction < 2.0 {
        return Err(format!(
            "aggregation gate failed: pagerank msg reduction {pagerank_reduction:.1}x < 2.0x \
             ({} -> {} messages over the processor sweep)",
            pagerank_msgs.0, pagerank_msgs.1
        ));
    }
    println!("PASS aggregation: pagerank msg reduction {pagerank_reduction:.1}x (>= 2.0x)");
    println!("  aggregation sweep passed: counts coalesced, results and bytes conserved");
    Ok(())
}

/// Overlap sweep (DESIGN.md §17): run all six applications with the
/// split-phase prefetch path off and on, and check the tentpole
/// invariants — issuing fetches at task-enable time may only *hide*
/// communication latency under computation, never change the application
/// result or make any run slower. The on-run replays the off-run's
/// schedule ([`Harness::ipsc_controlled`]): with placement and
/// per-processor start order held fixed, the comparison isolates the
/// communication effect of prefetching from Graham list-scheduling
/// anomalies, and earlier data arrival can only move starts earlier.
/// Hard gates: bit-identical final object versions, prefetch-on simulated
/// time <= prefetch-off on every app/processor point, and a strictly
/// positive overlap fraction (comm time hidden under busy spans) on the
/// two irregular applications.
/// Also checks composition with fetch aggregation (§15) and the DASH
/// prefetch-stream path (bytes on the wire bit-identical, stalls only
/// shrink). Writes the per-point numbers to `OVERLAP_sweep.json`.
pub fn overlap_sweep(h: &mut Harness) -> Result<(), String> {
    println!(
        "\n{}",
        header("Overlap sweep: split-phase prefetch, comm/comp overlap")
    );
    let procs_sweep = [2usize, 4, 8, 16];
    let mut rows: Vec<String> = Vec::new();
    let mut issued_total = 0u64;
    let mut best_overlap: std::collections::BTreeMap<&'static str, f64> =
        std::collections::BTreeMap::new();

    for app in App::ALL.into_iter().chain(App::IRREGULAR) {
        let mode = if app.has_placement() {
            LocalityMode::TaskPlacement
        } else {
            LocalityMode::Locality
        };
        for &procs in &procs_sweep {
            let (off, on) = h.ipsc_controlled(app, procs, mode, |_| {}, |c| c.prefetch = true);
            println!(
                "  {:>8} x{procs:<2}: {:.3}s -> {:.3}s | prefetches {} ({} hit, {} stale) | \
                 overlap {:.0}%",
                app.name(),
                off.exec_time_s,
                on.exec_time_s,
                on.prefetches_issued,
                on.prefetch_hits,
                on.prefetch_stale,
                on.overlap_frac * 100.0
            );
            if on.final_versions != off.final_versions {
                return Err(format!(
                    "{} x{procs}: final object versions diverged with prefetch on",
                    app.name()
                ));
            }
            if on.tasks_executed != off.tasks_executed {
                return Err(format!(
                    "{} x{procs}: {} tasks executed with prefetch vs {} without",
                    app.name(),
                    on.tasks_executed,
                    off.tasks_executed
                ));
            }
            if on.exec_time_s > off.exec_time_s + 1e-9 {
                return Err(format!(
                    "{} x{procs}: prefetch regressed simulated time \
                     ({:.6}s vs {:.6}s)",
                    app.name(),
                    on.exec_time_s,
                    off.exec_time_s
                ));
            }
            issued_total += on.prefetches_issued;
            let e = best_overlap.entry(app.name()).or_insert(0.0);
            *e = e.max(on.overlap_frac);
            rows.push(format!(
                "{{\"backend\": \"ipsc\", \"app\": \"{}\", \"procs\": {procs}, \
                 \"exec_off_s\": {:.6}, \"exec_on_s\": {:.6}, \"overlap_frac\": {:.6}, \
                 \"prefetches\": {}, \"hits\": {}, \"stale\": {}}}",
                app.name(),
                off.exec_time_s,
                on.exec_time_s,
                on.overlap_frac,
                on.prefetches_issued,
                on.prefetch_hits,
                on.prefetch_stale
            ));
        }
    }
    if issued_total == 0 {
        return Err("prefetch path never fired across the whole sweep".into());
    }

    // Composition with the inspector/executor aggregation pass (§15): the
    // prefetcher issues bundled fetches, and the combination must keep the
    // result bit-identical while never running slower than aggregation
    // alone.
    for app in App::IRREGULAR {
        for &procs in &[4usize, 8] {
            let (base, both) = h.ipsc_controlled(
                app,
                procs,
                LocalityMode::TaskPlacement,
                |c| c.aggregate_fetches = true,
                |c| c.prefetch = true,
            );
            println!(
                "  {:>8} x{procs:<2} +agg: {:.3}s -> {:.3}s | prefetches {}",
                app.name(),
                base.exec_time_s,
                both.exec_time_s,
                both.prefetches_issued
            );
            if both.final_versions != base.final_versions {
                return Err(format!(
                    "{} x{procs}: prefetch+aggregation diverged from aggregation alone",
                    app.name()
                ));
            }
            if both.exec_time_s > base.exec_time_s + 1e-9 {
                return Err(format!(
                    "{} x{procs}: prefetch on top of aggregation regressed time \
                     ({:.6}s vs {:.6}s)",
                    app.name(),
                    both.exec_time_s,
                    base.exec_time_s
                ));
            }
        }
    }

    // DASH: prefetch streams remote lines toward the target cluster at
    // enable time. Directory traffic is bit-identical — only stalls shrink.
    for app in App::IRREGULAR {
        for &procs in &[4usize, 8] {
            let off = h.dash(app, procs, LocalityMode::TaskPlacement);
            let on = h.dash_with(app, procs, LocalityMode::TaskPlacement, |c| {
                c.prefetch = true
            });
            println!(
                "  {:>8} x{procs:<2} DASH: {:.3}s -> {:.3}s | bytes {} -> {} | \
                 prefetches {} ({} hit)",
                app.name(),
                off.exec_time_s,
                on.exec_time_s,
                off.bytes_moved,
                on.bytes_moved,
                on.prefetches_issued,
                on.prefetch_hits
            );
            if on.bytes_moved != off.bytes_moved {
                return Err(format!(
                    "{} x{procs} DASH: bytes moved changed with prefetch ({} vs {})",
                    app.name(),
                    on.bytes_moved,
                    off.bytes_moved
                ));
            }
            if on.tasks_executed != off.tasks_executed {
                return Err(format!(
                    "{} x{procs} DASH: task count changed with prefetch",
                    app.name()
                ));
            }
            if on.exec_time_s > off.exec_time_s + 1e-9 {
                return Err(format!(
                    "{} x{procs} DASH: prefetch regressed exec time ({:.6}s vs {:.6}s)",
                    app.name(),
                    on.exec_time_s,
                    off.exec_time_s
                ));
            }
            rows.push(format!(
                "{{\"backend\": \"dash\", \"app\": \"{}\", \"procs\": {procs}, \
                 \"exec_off_s\": {:.6}, \"exec_on_s\": {:.6}, \"overlap_frac\": {:.6}, \
                 \"prefetches\": {}, \"hits\": {}, \"stale\": {}}}",
                app.name(),
                off.exec_time_s,
                on.exec_time_s,
                on.overlap_frac,
                on.prefetches_issued,
                on.prefetch_hits,
                on.prefetch_stale
            ));
        }
    }

    let pagerank_overlap = *best_overlap.get(App::Pagerank.name()).unwrap_or(&0.0);
    let halo_overlap = *best_overlap.get(App::Halo.name()).unwrap_or(&0.0);
    if pagerank_overlap <= 0.0 || halo_overlap <= 0.0 {
        return Err(format!(
            "overlap gate failed: prefetch hid no communication on the irregular apps \
             (pagerank {pagerank_overlap:.4}, halo {halo_overlap:.4})"
        ));
    }

    let mut body = String::from("{\n  \"rows\": [\n");
    for (k, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {r}{}\n",
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    crate::bench::write_json("OVERLAP_sweep.json", &body)?;
    println!("  wrote OVERLAP_sweep.json ({} points)", rows.len());

    println!(
        "PASS overlap: {issued_total} prefetches issued, no run slower, results bit-identical, \
         overlap pagerank {:.0}% / halo {:.0}%",
        pagerank_overlap * 100.0,
        halo_overlap * 100.0
    );
    println!("  overlap sweep passed: communication hidden, never added");
    Ok(())
}

// ---------------------------------------------------------------------------
// Multi-tenant service stress (DESIGN.md §16)
// ---------------------------------------------------------------------------

/// Tenant classes mixed into the stress stream, keyed by DAG index so the
/// mix is deterministic and every submitter thread sees every class.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TenantClass {
    /// Plain DAG: must complete with bit-exact output and zero recoveries.
    Clean,
    /// Injected crashes (`panic_p`): must still complete bit-exact.
    Faulty,
    /// Zero wall-clock budget: must cancel before any task completes.
    Deadline,
    /// A genuinely buggy task body: must fail alone; the pool survives.
    Buggy,
}

impl TenantClass {
    fn of(i: usize) -> TenantClass {
        match i % 10 {
            7 => TenantClass::Faulty,
            8 => TenantClass::Deadline,
            9 => TenantClass::Buggy,
            _ => TenantClass::Clean,
        }
    }

    fn name(self) -> &'static str {
        match self {
            TenantClass::Clean => "clean",
            TenantClass::Faulty => "faulty",
            TenantClass::Deadline => "deadline",
            TenantClass::Buggy => "buggy",
        }
    }
}

/// A few microseconds of busy work per task, so the shared pool drains
/// slower than the submitters produce and backpressure genuinely engages.
fn stress_spin() {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..6_000 {
        x = std::hint::black_box(x)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    std::hint::black_box(x);
}

/// Serial chain folding task indices into one accumulator.
fn stress_chain(len: usize) -> (Program, Handle<u64>, u64) {
    let mut prog = Program::new();
    let h = prog.create("acc", 8, 0u64);
    let mut want = 0u64;
    for i in 0..len {
        want = want.wrapping_mul(31).wrapping_add(i as u64 + 1);
        prog.submit(TaskBuilder::new("svc-chain").rd_wr(h).body(move |ctx| {
            stress_spin();
            let mut v = ctx.wr(h);
            *v = v.wrapping_mul(31).wrapping_add(i as u64 + 1);
        }));
    }
    (prog, h, want)
}

/// Fan-out / fan-in: `w` independent writers joined by one summing task.
fn stress_diamond(w: usize) -> (Program, Handle<u64>, u64) {
    let mut prog = Program::new();
    let slots: Vec<Handle<u64>> = (0..w)
        .map(|i| prog.create(format!("slot{i}"), 8, 0u64))
        .collect();
    let acc = prog.create("acc", 8, 0u64);
    for (i, &s) in slots.iter().enumerate() {
        prog.submit(TaskBuilder::new("svc-fan").wr(s).body(move |ctx| {
            stress_spin();
            *ctx.wr(s) = (i as u64 + 1) * (i as u64 + 1);
        }));
    }
    let mut join = TaskBuilder::new("svc-join").rd_wr(acc);
    for &s in &slots {
        join = join.rd(s);
    }
    prog.submit(join.body(move |ctx| {
        let mut sum = 0u64;
        for &s in &slots {
            sum = sum.wrapping_add(*ctx.rd(s));
        }
        *ctx.wr(acc) = sum;
    }));
    let want = (1..=w as u64).map(|i| i * i).fold(0u64, u64::wrapping_add);
    (prog, acc, want)
}

/// One good task, then a task whose body has a real bug.
fn stress_buggy() -> (Program, Handle<u64>, u64) {
    let mut prog = Program::new();
    let h = prog.create("acc", 8, 0u64);
    prog.submit(TaskBuilder::new("svc-ok").rd_wr(h).body(move |ctx| {
        *ctx.wr(h) += 1;
    }));
    prog.submit(TaskBuilder::new("svc-bug").rd_wr(h).body(move |_ctx| {
        panic!("tenant bug");
    }));
    (prog, h, 0)
}

fn stress_program(class: TenantClass, i: usize) -> (Program, Handle<u64>, u64) {
    match class {
        TenantClass::Buggy => stress_buggy(),
        _ if i.is_multiple_of(3) => stress_diamond(3 + i % 5),
        _ => stress_chain(3 + i % 8),
    }
}

fn outcome_name(o: &Outcome) -> &'static str {
    match o {
        Outcome::Completed => "completed",
        Outcome::DeadlineExceeded => "deadline_exceeded",
        Outcome::Failed(_) => "failed",
        Outcome::Shed => "shed",
    }
}

/// One tenant awaiting `wait()`: id, class, output handle, expected output,
/// task count.
type Inflight = (TenantId, TenantClass, Handle<u64>, u64, usize);

/// Per-tenant JSON row: id, class, outcome, tasks, completed, recoveries.
type TenantRow = (u32, TenantClass, &'static str, usize, usize, usize);

/// Wait for every in-flight tenant and verify its report against its class.
#[allow(clippy::too_many_arguments)]
fn settle(
    svc: &JadeService,
    inflight: &mut Vec<Inflight>,
    errors: &Mutex<Vec<String>>,
    tagged: &Mutex<Vec<TaggedEvent>>,
    rows: &Mutex<Vec<TenantRow>>,
    recoveries: &AtomicUsize,
) {
    for (id, class, want_h, want, tasks) in inflight.drain(..) {
        let r = svc.wait(id);
        let fail = |why: String| {
            errors
                .lock()
                .unwrap()
                .push(format!("tenant {id} ({}): {why}", class.name()));
        };
        match class {
            TenantClass::Clean | TenantClass::Faulty => {
                if r.outcome != Outcome::Completed {
                    fail(format!("outcome {:?}, want Completed", r.outcome));
                } else {
                    let got = *r.store.read(want_h);
                    if got != want {
                        fail(format!("output {got:#x}, want {want:#x}"));
                    }
                    if r.tasks_completed != tasks {
                        fail(format!("{}/{tasks} tasks completed", r.tasks_completed));
                    }
                    if class == TenantClass::Clean && r.recoveries != 0 {
                        fail(format!("{} recoveries without a fault plan", r.recoveries));
                    }
                    tagged.lock().unwrap().extend(r.tagged_events());
                }
                recoveries.fetch_add(r.recoveries, Ordering::Relaxed);
            }
            TenantClass::Deadline => {
                if r.outcome != Outcome::DeadlineExceeded {
                    fail(format!("outcome {:?}, want DeadlineExceeded", r.outcome));
                }
                if r.tasks_completed != 0 {
                    fail(format!(
                        "{} tasks completed under a zero budget",
                        r.tasks_completed
                    ));
                }
                if r.tasks_cancelled != tasks {
                    fail(format!("{}/{tasks} tasks cancelled", r.tasks_cancelled));
                }
            }
            TenantClass::Buggy => match &r.outcome {
                Outcome::Failed(msg) if msg.contains("tenant bug") => {}
                other => fail(format!("outcome {other:?}, want Failed(tenant bug)")),
            },
        }
        rows.lock().unwrap().push((
            id.0,
            class,
            outcome_name(&r.outcome),
            r.tasks_total,
            r.tasks_completed,
            r.recoveries,
        ));
    }
}

/// `repro service-stress`: thousands of independent DAGs from concurrent
/// submitters over one shared worker pool, with injected-fault, zero-
/// deadline and genuinely buggy tenants mixed in. Hard gates: every clean
/// and faulty tenant completes bit-exact, every deadline tenant cancels
/// with zero completions, every buggy tenant fails alone, backpressure
/// engages at least once, per-tenant lifecycle/conservation checks are
/// green, and event-stream re-executions reconcile with reported
/// recoveries. Writes `SERVICE_tenants.json` (per-tenant metrics artifact).
pub fn service_stress(h: &mut Harness) -> Result<(), String> {
    let total: usize = if h.quick { 400 } else { 3000 };
    let submitters = 4usize;
    let workers = 4usize;
    let batch = 16usize;

    println!("\n{}", header("Multi-tenant service stress"));
    println!(
        "  {total} DAGs from {submitters} submitters over {workers} workers \
         (max_active=6, max_pending=8, shed=reject-new)"
    );

    let mut cfg = ServiceConfig::new(workers);
    cfg.max_active = 6;
    cfg.max_pending = 8; // deliberately tight: backpressure must engage
    cfg.shed = ShedPolicy::RejectNew;
    let svc = JadeService::new(cfg);

    // Buggy tenants genuinely panic inside pool workers; the default hook
    // would spray backtraces over the report. Silence it for the duration.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let tagged: Mutex<Vec<TaggedEvent>> = Mutex::new(Vec::new());
    let rows: Mutex<Vec<TenantRow>> = Mutex::new(Vec::new());
    let overloads = AtomicUsize::new(0);
    let recoveries = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..submitters {
            let svc = &svc;
            let (errors, tagged, rows) = (&errors, &tagged, &rows);
            let (overloads, recoveries) = (&overloads, &recoveries);
            s.spawn(move || {
                let mut inflight: Vec<Inflight> = Vec::new();
                let mut i = t;
                while i < total {
                    let class = TenantClass::of(i);
                    let mut opts = TenantOptions::default().with_weight(1 + (i % 3) as u32);
                    match class {
                        TenantClass::Faulty => {
                            opts = opts.with_faults(FaultPlan {
                                panic_p: 0.3,
                                seed: 0x5eed + i as u64,
                                ..FaultPlan::none()
                            });
                        }
                        TenantClass::Deadline => opts = opts.with_deadline(Duration::ZERO),
                        _ => {}
                    }
                    let admitted = loop {
                        // Rebuilt per attempt: `submit` consumes the program.
                        let (prog, want_h, want) = stress_program(class, i);
                        let tasks = prog.task_count();
                        match svc.submit(prog, opts.clone()) {
                            Ok(id) => break Some((id, class, want_h, want, tasks)),
                            Err(SubmitError::Overloaded { .. }) => {
                                overloads.fetch_add(1, Ordering::Relaxed);
                                // Overload is backpressure, not failure:
                                // settle our own backlog and try again.
                                settle(svc, &mut inflight, errors, tagged, rows, recoveries);
                                std::thread::sleep(Duration::from_micros(100));
                            }
                            Err(e) => {
                                errors
                                    .lock()
                                    .unwrap()
                                    .push(format!("DAG {i} rejected: {e}"));
                                break None;
                            }
                        }
                    };
                    inflight.extend(admitted);
                    if inflight.len() >= batch {
                        settle(svc, &mut inflight, errors, tagged, rows, recoveries);
                    }
                    i += submitters;
                }
                settle(svc, &mut inflight, errors, tagged, rows, recoveries);
            });
        }
    });

    std::panic::set_hook(default_hook);
    svc.shutdown();

    let errors = errors.into_inner().unwrap();
    if !errors.is_empty() {
        for e in errors.iter().take(10) {
            println!("  FAIL {e}");
        }
        return Err(format!(
            "service stress: {} per-tenant check(s) failed",
            errors.len()
        ));
    }

    let tagged = tagged.into_inner().unwrap();
    let mut rows = rows.into_inner().unwrap();
    rows.sort_by_key(|r| r.0);
    if rows.len() != total {
        return Err(format!("{} reports for {total} submitted DAGs", rows.len()));
    }

    // The class mix is a pure function of the index, so the outcome tallies
    // are exact, not statistical.
    let mut want_mix = [0usize; 4];
    for i in 0..total {
        want_mix[TenantClass::of(i) as usize] += 1;
    }
    let mut got_mix = [0usize; 4];
    for r in &rows {
        got_mix[r.1 as usize] += 1;
    }
    if want_mix != got_mix {
        return Err(format!("class mix {got_mix:?}, want {want_mix:?}"));
    }
    let completed = rows.iter().filter(|r| r.2 == "completed").count();
    let deadline = rows.iter().filter(|r| r.2 == "deadline_exceeded").count();
    let failed = rows.iter().filter(|r| r.2 == "failed").count();
    let (want_done, want_dl, want_bug) = (
        want_mix[TenantClass::Clean as usize] + want_mix[TenantClass::Faulty as usize],
        want_mix[TenantClass::Deadline as usize],
        want_mix[TenantClass::Buggy as usize],
    );
    if (completed, deadline, failed) != (want_done, want_dl, want_bug) {
        return Err(format!(
            "outcomes ({completed}, {deadline}, {failed}), \
             want ({want_done}, {want_dl}, {want_bug})"
        ));
    }

    // Per-tenant event streams of every completed tenant: lifecycle chains,
    // span conservation, and counter self-consistency.
    check_lifecycle_per_tenant(&tagged).map_err(|e| format!("lifecycle: {e}"))?;
    check_conservation_per_tenant(&tagged, workers).map_err(|e| format!("conservation: {e}"))?;
    let mut metric_reexecs = 0usize;
    for (t, m) in Metrics::per_tenant(&tagged, workers) {
        if m.tasks_completed != m.tasks_created {
            return Err(format!(
                "tenant {t}: {} created but {} completed",
                m.tasks_created, m.tasks_completed
            ));
        }
        if m.tasks_started != m.tasks_completed + m.tasks_reexecuted as usize {
            return Err(format!(
                "tenant {t}: {} starts for {} completions + {} re-executions",
                m.tasks_started, m.tasks_completed, m.tasks_reexecuted
            ));
        }
        metric_reexecs += m.tasks_reexecuted as usize;
    }
    let recov = recoveries.load(Ordering::Relaxed);
    if metric_reexecs != recov {
        return Err(format!(
            "event streams carry {metric_reexecs} re-executions \
             but reports counted {recov} recoveries"
        ));
    }
    let overload_n = overloads.load(Ordering::Relaxed);
    if overload_n == 0 {
        return Err("backpressure never engaged: no Overloaded rejection all run".to_string());
    }
    if recov == 0 {
        return Err("no injected-crash recoveries: the fault mix never fired".to_string());
    }

    // Heavy-skew fairness: a weight-8 tenant with a big DAG against a
    // weight-1 tenant on one worker with the tuned policy, so dispatch
    // order *is* the fairness policy. The controller's credit cap must
    // bound the heavy tenant's bursts (the ROADMAP starvation note).
    let skew_gap = {
        use std::sync::{Arc, Condvar};
        let mut cfg = ServiceConfig::new(1);
        cfg.tune = true;
        let svc = JadeService::new(cfg);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut blocker = Program::new();
        let hb = blocker.create("b", 8, 0u64);
        let g = Arc::clone(&gate);
        blocker.submit(TaskBuilder::new("block").rd_wr(hb).body(move |_| {
            let (m, cv) = &*g;
            let mut open = m.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }));
        let wide = |n: usize| {
            let mut prog = Program::new();
            let hs: Vec<Handle<u64>> = (0..n)
                .map(|i| prog.create(format!("s{i}"), 8, 0u64))
                .collect();
            for (i, &hh) in hs.iter().enumerate() {
                prog.submit(TaskBuilder::new("wide").rd_wr(hh).body(move |ctx| {
                    *ctx.wr(hh) = i as u64 + 1;
                }));
            }
            prog
        };
        let b = svc
            .submit(blocker, TenantOptions::default())
            .map_err(|e| format!("skew blocker rejected: {e}"))?;
        while svc.active_len() == 0 {
            std::thread::yield_now();
        }
        let heavy = svc
            .submit(wide(64), TenantOptions::default().with_weight(8))
            .map_err(|e| format!("skew heavy tenant rejected: {e}"))?;
        let light = svc
            .submit(wide(16), TenantOptions::default().with_weight(1))
            .map_err(|e| format!("skew light tenant rejected: {e}"))?;
        {
            let (m, cv) = &*gate;
            *m.lock().unwrap() = true;
            cv.notify_all();
        }
        let _ = svc.wait(b);
        let mut skew_tagged = svc.wait(heavy).tagged_events();
        skew_tagged.extend(svc.wait(light).tagged_events());
        skew_tagged.sort_by_key(|te| te.event.time_ps);
        let dispatches: Vec<TenantId> = skew_tagged
            .iter()
            .filter(|te| matches!(te.event.kind, jade_core::EventKind::TaskDispatched { .. }))
            .map(|te| te.tenant)
            .collect();
        let light_picks: Vec<usize> = dispatches
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == light)
            .map(|(i, _)| i)
            .collect();
        let max_gap = light_picks
            .windows(2)
            .map(|p| p[1] - p[0])
            .max()
            .unwrap_or(0);
        // Between two light dispatches both tenants are continuously ready,
        // so the cap (CREDIT_CAP_MAX / 2 ready tenants) bounds every heavy
        // stretch even though heavy's weight is 8.
        let bound = (jade_core::tune::CREDIT_CAP_MAX / 2) as usize + 1;
        if max_gap > bound {
            return Err(format!(
                "skewed scenario: light tenant starved, dispatch gap {max_gap} > {bound}"
            ));
        }
        let log = svc.tune_log();
        log.check_ranges()
            .map_err(|e| format!("skewed scenario: {e}"))?;
        if log.decisions.is_empty() {
            return Err("skewed scenario: tuned service recorded no decisions".into());
        }
        svc.shutdown();
        println!(
            "  skewed scenario: weight 8-vs-1, max light-tenant dispatch gap \
             {max_gap} (bound {bound})"
        );
        max_gap
    };

    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"schema\": \"jade-service-stress/v1\",\n");
    body.push_str(&format!("  \"quick\": {},\n", h.quick));
    body.push_str(&format!(
        "  \"dags\": {total},\n  \"workers\": {workers},\n  \"submitters\": {submitters},\n"
    ));
    body.push_str(&format!(
        "  \"overload_rejections\": {overload_n},\n  \"recoveries\": {recov},\n"
    ));
    body.push_str(&format!(
        "  \"outcomes\": {{ \"completed\": {completed}, \
         \"deadline_exceeded\": {deadline}, \"failed\": {failed} }},\n"
    ));
    body.push_str(&format!("  \"skew_max_dispatch_gap\": {skew_gap},\n"));
    body.push_str("  \"tenants\": [\n");
    for (k, (id, class, outcome, tasks, done, rec)) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{ \"tenant\": {id}, \"class\": \"{}\", \"outcome\": \"{outcome}\", \
             \"tasks\": {tasks}, \"completed\": {done}, \"recoveries\": {rec} }}{}\n",
            class.name(),
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    crate::bench::write_json("SERVICE_tenants.json", &body)?;
    println!("  wrote SERVICE_tenants.json ({} tenants)", rows.len());

    println!(
        "PASS service-stress: {total} DAGs ({completed} completed, {deadline} \
         deadline-exceeded, {failed} failed), {overload_n} overload rejections, \
         {recov} recoveries, skew gap {skew_gap}, per-tenant \
         lifecycle/conservation green"
    );
    Ok(())
}

/// Tune sweep (DESIGN.md §19): on every application, cross a static grid of
/// hand-set knob values (adaptive-broadcast evidence margin × checkpoint
/// interval) under one fault plan, then run the feedback controller against
/// the same plan. The hard gate: the controller's virtual makespan lands
/// within 5% of the best static setting in the grid, controller-on runs are
/// bit-identical across repeats (event streams, counters, decision logs),
/// application results match the controller-off runs, and every tuned knob
/// stays inside its documented range. The threaded backend is checked for
/// the same determinism/parity contract on real OS threads. Emits
/// `TUNE_sweep.json` and the `PASS tune:` marker CI greps.
pub fn tune_sweep(h: &mut Harness) -> Result<(), String> {
    println!(
        "\n{}",
        header("Tune sweep: controller vs static knob grid (iPSC/860)")
    );
    let procs = 8;
    /// Message-drop seeds every setting is averaged over (see the scoring
    /// note at the grid loop below).
    const SEEDS: &[u64] = &[11, 12, 13];
    let margins: &[u32] = if h.quick { &[0, 2] } else { &[0, 1, 2] };
    let mults: &[f64] = if h.quick {
        &[0.5, 2.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0]
    };
    let apps: Vec<App> = App::ALL
        .iter()
        .chain(App::IRREGULAR.iter())
        .copied()
        .collect();
    let mut rows: Vec<String> = Vec::new();
    let mut worst_ratio = 0.0f64;
    println!(
        "  {:>14} {:>10} {:>12} {:>10} {:>7} {:>10}",
        "app", "static(s)", "grid", "tuned(s)", "ratio", "decisions"
    );
    for &app in &apps {
        let mode = if app.has_placement() {
            LocalityMode::TaskPlacement
        } else {
            LocalityMode::Locality
        };
        let trace = h.trace(app, procs);
        let spo = app.ipsc_sec_per_op(&trace);
        let base_cfg = jade_ipsc::IpscConfig::paper(procs, mode, spo);
        let clean = jade_ipsc::try_run(&trace, &base_cfg)
            .map_err(|e| format!("{} clean run failed: {e}", app.name()))?;
        // One fault-plan family per app, sized to its makespan: a mid-run
        // fail-stop, light message loss, and a checkpoint chain to tune.
        // Every setting is scored as the mean over a few drop seeds: one
        // dropped message can move a small run by a whole retry timeout,
        // and scoring single samples would hand the static side the luck
        // of `grid × seeds` draws while the controller gets one. Means
        // compare the policies, not the draws.
        let base_iv = (0.15 * clean.exec_time_s).max(1e-6);
        let mk_plan = |seed: u64| FaultPlan {
            drop_p: 0.02,
            fail_proc: Some(procs - 1),
            fail_at: dsim::SimDuration::from_secs_f64(0.4 * clean.exec_time_s),
            seed,
            checkpoint: Some(dsim::SimDuration::from_secs_f64(base_iv)),
            ..FaultPlan::none()
        };
        // Static grid: every (evidence margin, checkpoint interval) pair.
        let mut best: Option<(f64, u32, f64)> = None;
        for &m in margins {
            for &k in mults {
                let mut sum = 0.0;
                for &seed in SEEDS {
                    let mut cfg = base_cfg.clone();
                    cfg.faults = mk_plan(seed)
                        .with_checkpoint(dsim::SimDuration::from_secs_f64(base_iv * k));
                    cfg.evidence_margin = m;
                    let r = jade_ipsc::try_run(&trace, &cfg).map_err(|e| {
                        format!("{} static run (margin {m}, x{k}) failed: {e}", app.name())
                    })?;
                    if r.final_versions != clean.final_versions {
                        return Err(format!(
                            "{}: static run (margin {m}, x{k}, seed {seed}) diverged \
                             from fault-free results",
                            app.name()
                        ));
                    }
                    sum += r.exec_time_s;
                }
                let mean = sum / SEEDS.len() as f64;
                if best.is_none_or(|(b, _, _)| mean < b) {
                    best = Some((mean, m, k));
                }
            }
        }
        let (best_s, best_m, best_k) = best.expect("grid is non-empty");
        // Controller on, over the same seeds; the first seed runs twice
        // because tuned runs must be bit-identical end to end.
        let mut tuned_sum = 0.0;
        let mut first: Option<jade_ipsc::IpscRunResult> = None;
        for (si, &seed) in SEEDS.iter().enumerate() {
            let mut tuned_cfg = base_cfg.clone();
            tuned_cfg.faults = mk_plan(seed);
            tuned_cfg.tune = true;
            let (t1, e1) = jade_ipsc::try_run_traced(&trace, &tuned_cfg)
                .map_err(|e| format!("{} tuned run failed: {e}", app.name()))?;
            if si == 0 {
                let (t2, e2) = jade_ipsc::try_run_traced(&trace, &tuned_cfg)
                    .map_err(|e| format!("{} tuned repeat failed: {e}", app.name()))?;
                if e1 != e2 {
                    return Err(format!(
                        "{}: tuned event streams differ across repeats",
                        app.name()
                    ));
                }
                if t1.tune != t2.tune {
                    return Err(format!(
                        "{}: tuned decision logs differ across repeats",
                        app.name()
                    ));
                }
            }
            if t1.tune.decisions.is_empty() {
                return Err(format!("{}: controller took no decisions", app.name()));
            }
            t1.tune
                .check_ranges()
                .map_err(|e| format!("{}: {e}", app.name()))?;
            if t1.final_versions != clean.final_versions {
                return Err(format!(
                    "{}: tuned run (seed {seed}) diverged from fault-free results",
                    app.name()
                ));
            }
            tuned_sum += t1.exec_time_s;
            if si == 0 {
                first = Some(t1);
            }
        }
        let tuned_s = tuned_sum / SEEDS.len() as f64;
        let t1 = first.expect("at least one seed");
        let ratio = tuned_s / best_s;
        worst_ratio = worst_ratio.max(ratio);
        println!(
            "  {:>14} {:>10.3} {:>12} {:>10.3} {:>7.3} {:>10}",
            app.name(),
            best_s,
            format!("m{best_m} x{best_k}"),
            tuned_s,
            ratio,
            t1.tune.decisions.len()
        );
        if ratio > 1.05 {
            return Err(format!(
                "{}: tuned makespan {:.4}s misses the best static {:.4}s \
                 (margin {best_m}, x{best_k}) by {:.1}% (> 5%, mean over {} seeds)",
                app.name(),
                tuned_s,
                best_s,
                (ratio - 1.0) * 100.0,
                SEEDS.len()
            ));
        }
        rows.push(format!(
            "{{\"app\": \"{}\", \"procs\": {procs}, \"best_static_s\": {:.6}, \
             \"best_margin\": {best_m}, \"best_ckpt_mult\": {best_k}, \
             \"tuned_s\": {:.6}, \"ratio\": {:.6}, \"decisions\": {}, \
             \"checkpoints_tuned\": {}, \"broadcasts_tuned\": {}}}",
            app.name(),
            best_s,
            tuned_s,
            ratio,
            t1.tune.decisions.len(),
            t1.checkpoints,
            t1.broadcasts
        ));
    }

    // Threaded backend: same contract on real OS threads — tuned output
    // equals untuned output, repeats agree, knobs in range. The drain/steal
    // decisions derive from the batch shape only, so the logs must repeat
    // bit-for-bit even though OS scheduling does not.
    let threads_decisions = {
        let workers = 4;
        let wcfg = jade_apps::water::WaterConfig::small(workers);
        let mut rt_off = jade_threads::ThreadRuntime::new(workers);
        let off = jade_apps::water::run_on(&mut rt_off, &wcfg);
        let mut rt_a = jade_threads::ThreadRuntime::new(workers);
        rt_a.enable_tuning();
        let on_a = jade_apps::water::run_on(&mut rt_a, &wcfg);
        let mut rt_b = jade_threads::ThreadRuntime::new(workers);
        rt_b.enable_tuning();
        let on_b = jade_apps::water::run_on(&mut rt_b, &wcfg);
        if on_a != off || on_b != off {
            return Err("threads: tuned Water output diverged from untuned".into());
        }
        let log_a = rt_a
            .tune_log()
            .ok_or("threads: tuning enabled but no log recorded")?
            .clone();
        let log_b = rt_b
            .tune_log()
            .ok_or("threads: tuning enabled but no log recorded")?
            .clone();
        if log_a != log_b {
            return Err("threads: tuned decision logs differ across repeats".into());
        }
        log_a.check_ranges().map_err(|e| format!("threads: {e}"))?;
        println!(
            "  threads Water x{workers}: tuned == untuned output, {} decisions, \
             logs repeat bit-for-bit",
            log_a.decisions.len()
        );
        log_a.decisions.len()
    };

    let mut body = String::new();
    body.push_str("{\n  \"schema\": \"jade-tune-sweep/v1\",\n");
    body.push_str(&format!("  \"quick\": {},\n", h.quick));
    body.push_str("  \"gate_ratio\": 1.05,\n");
    body.push_str(&format!("  \"seeds\": {},\n", SEEDS.len()));
    body.push_str(&format!("  \"worst_ratio\": {worst_ratio:.6},\n"));
    body.push_str(&format!("  \"threads_decisions\": {threads_decisions},\n"));
    body.push_str("  \"apps\": [\n");
    for (k, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {r}{}\n",
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    crate::bench::write_json("TUNE_sweep.json", &body)?;
    println!("  wrote TUNE_sweep.json ({} apps)", rows.len());

    println!(
        "PASS tune: controller within {:.1}% of best static on {} apps \
         (gate 5%), runs bit-identical across repeats, knobs in range",
        (worst_ratio - 1.0).max(0.0) * 100.0,
        rows.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_run() {
        // Smoke-test every experiment function at quick scale with a tiny
        // processor sweep by running the underlying harness entries.
        let mut h = Harness::new(true);
        for app in App::ALL {
            let d = h.dash(app, 2, LocalityMode::Locality);
            assert!(d.exec_time_s > 0.0);
            let i = h.ipsc(app, 2, LocalityMode::Locality);
            assert!(i.exec_time_s > 0.0);
        }
    }

    #[test]
    fn service_stress_quick_passes() {
        let mut h = Harness::new(true);
        service_stress(&mut h).expect("service stress");
    }

    #[test]
    fn workfree_fraction_is_a_percentage() {
        let mut h = Harness::new(true);
        let full = h
            .ipsc(App::Cholesky, 4, LocalityMode::TaskPlacement)
            .exec_time_s;
        let free = h
            .ipsc_with(App::Cholesky, 4, LocalityMode::TaskPlacement, |c| {
                c.work_free = true
            })
            .exec_time_s;
        let pct = 100.0 * free / full;
        assert!(pct > 0.0 && pct < 100.0, "{pct}");
    }

    #[test]
    fn replication_off_is_slower() {
        let mut h = Harness::new(true);
        let on = h.ipsc(App::Water, 8, LocalityMode::Locality).exec_time_s;
        let off = h
            .ipsc_with(App::Water, 8, LocalityMode::Locality, |c| {
                c.replication = false
            })
            .exec_time_s;
        assert!(off > 1.5 * on, "no-replication {off} vs {on}");
    }
}
