//! Allocation counting for the zero-alloc steady-state gate.
//!
//! The counter itself is safe code (this crate is
//! `#![forbid(unsafe_code)]`); the `#[global_allocator]` shim that feeds
//! it is a ~12-line `unsafe impl GlobalAlloc` delegating to
//! [`std::alloc::System`], duplicated verbatim in the crate roots that opt
//! in: the `repro` binary (so `repro bench` can report `allocs_per_task`)
//! and the workspace-level `tests/allocs.rs`. Binaries that do *not*
//! install the shim — every other test binary, or one using a different
//! global allocator — see a counter that never moves, which
//! [`counting_active`] detects so alloc assertions skip cleanly instead of
//! failing vacuously.
//!
//! Only `alloc` and `realloc` are counted. Deallocations are free to
//! batch up (dropping a recycled buffer is not allocation pressure), and
//! counting them would double-charge realloc.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Record one allocation. Called by an installed allocator shim on every
/// `alloc`/`realloc`; `Relaxed` because only totals matter, and the shim
/// must add no synchronization to the paths it measures.
#[inline]
pub fn note_alloc() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Total allocations observed since process start. Zero forever if no
/// counting shim is installed.
#[inline]
pub fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Is a counting shim actually installed as the global allocator?
///
/// Probes by performing a handful of heap allocations the optimizer
/// cannot elide and watching whether the counter moves; memoized after
/// the first call. Concurrent allocation on other threads can only
/// inflate the observed delta, never produce a false negative.
pub fn counting_active() -> bool {
    static ACTIVE: OnceLock<bool> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        const PROBES: u64 = 16;
        let before = allocs();
        for i in 0..PROBES {
            std::hint::black_box(Box::new(std::hint::black_box(i)));
        }
        allocs().wrapping_sub(before) >= PROBES
    })
}

/// Allocations observed while running `f`, plus `f`'s result.
pub fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocs();
    let r = f();
    (allocs().wrapping_sub(before), r)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// This test binary installs no `#[global_allocator]` shim, so the
    /// counter never moves — the exact situation in which alloc
    /// assertions elsewhere must detect inactivity and skip. (The
    /// positive case — the probe observing a real shim — is covered by
    /// the workspace-level `tests/allocs.rs`, which installs one.)
    #[test]
    fn probe_reports_inactive_without_an_installed_shim() {
        assert!(!counting_active());
        let (n, _) = allocs_during(|| std::hint::black_box(vec![0u8; 4096]));
        assert_eq!(n, 0, "no shim, so nothing feeds the counter");
    }

    #[test]
    fn counter_moves_when_fed_directly() {
        let before = allocs();
        note_alloc();
        note_alloc();
        assert_eq!(allocs().wrapping_sub(before), 2);
    }
}
