//! # jade-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (Section 5) on the simulated machines, printing reproduced numbers next
//! to the paper's published numbers. See the `repro` binary
//! (`cargo run --release -p jade-bench --bin repro -- all`) and
//! EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub mod alloc;
pub mod apps;
pub mod bench;
pub mod experiments;
pub mod harness;
pub mod paper_data;

pub use apps::App;
pub use harness::{Harness, TraceBackend, PROCS};
