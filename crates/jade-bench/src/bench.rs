//! Wall-clock benchmark runner (`repro bench`).
//!
//! Everything else in this crate measures *simulated* seconds on the 1995
//! machines. This module measures *host* seconds with [`Instant`], so perf
//! work on the runtime itself has a regression gate:
//!
//! * **thread backend** — all four applications plus a scheduler-stress
//!   microbenchmark, across worker counts clamped to the host's cpus, in
//!   both [`SchedMode::Sharded`] (the per-worker-deque scheduler) and
//!   [`SchedMode::GlobalLock`] (the seed single-lock scheduler), and in
//!   both batch policies (`batch=1` per-task flushing vs `batch=auto`
//!   drain-buffer batching) → `BENCH_threads.json`;
//! * **simulators** — host cost of simulating each application on DASH and
//!   the iPSC/860 at 1/2/4/8 procs → `BENCH_sim.json` (simulated procs run
//!   on one host thread, so this sweep is never clamped).
//!
//! Methodology: one warmup run, then `reps` timed runs, aggregated by
//! trimmed mean (min and max dropped when `reps >= 3`). Before any timing,
//! an untimed verification pass checks that scheduler modes and batch
//! policies all produce bit-identical application outputs and matching
//! deterministic event counters (and, at one worker, *identical event
//! streams*). JSON is written to `BENCH_*.tmp` then renamed, so
//! interrupted runs never leave a truncated committed file.

use crate::apps::App;
use jade_apps::{cholesky, halo, ocean, pagerank, string_app, water};
use jade_core::{JadeRuntime, TaskBuilder};
use jade_threads::{
    BatchPolicy, DequeImpl, JadeService, Outcome, Program, SchedMode, ServiceConfig, TenantOptions,
    ThreadRuntime,
};
use std::time::Instant;

/// Worker / processor counts the benchmarks sweep before clamping.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The thread-backend worker sweep, clamped to the host's cpus (always
/// keeping 1). Timing more workers than cpus silently oversubscribes the
/// host — the extra threads time-slice instead of running in parallel, so
/// a downstream reader would mistake preemption contention for scaling.
/// The simulator sweep intentionally does NOT use this: simulated procs
/// all run on one host thread.
fn worker_counts(cpus: usize) -> Vec<usize> {
    WORKER_COUNTS
        .iter()
        .copied()
        .filter(|&w| w == 1 || w <= cpus)
        .collect()
}

/// One timed configuration's aggregated result.
struct BenchResult {
    backend: &'static str,
    app: String,
    workers: usize,
    mode: Option<SchedMode>,
    /// Drain-buffer policy (thread backend only).
    batch: Option<BatchPolicy>,
    /// Ready-queue implementation (sharded scheduler only).
    deque: Option<DequeImpl>,
    tasks: usize,
    secs: f64,
    reps_secs: Vec<f64>,
    /// Simulated execution time (simulator benchmarks only).
    sim_exec_s: Option<f64>,
    /// Synchronizer-lock acquisitions and tasks executed over one run
    /// (thread backend only) — the lock-amortization figure.
    sync_locks: Option<(usize, usize)>,
    /// Steady-state heap allocations per task (SchedStress rows, `None`
    /// when no counting allocator is active in this binary) — measured
    /// differentially so per-batch fixed costs cancel.
    allocs_per_task: Option<f64>,
}

impl BenchResult {
    fn tasks_per_sec(&self) -> f64 {
        self.tasks as f64 / self.secs.max(1e-12)
    }

    /// Synchronizer-lock acquisitions per executed task; below 1.0 means
    /// the drain buffer amortized the lock.
    fn lock_acq_per_task(&self) -> Option<f64> {
        self.sync_locks
            .map(|(locks, executed)| locks as f64 / (executed.max(1)) as f64)
    }

    /// Sample standard deviation of the timed reps (0 for fewer than two).
    fn stddev(&self) -> f64 {
        let n = self.reps_secs.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.reps_secs.iter().sum::<f64>() / n as f64;
        let var = self
            .reps_secs
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// Application outputs across the four apps, comparable for bit-identity.
#[derive(PartialEq)]
enum Output {
    Water(water::WaterOutput),
    StringApp(string_app::StringOutput),
    Ocean(ocean::OceanOutput),
    Cholesky(cholesky::CholeskyOutput),
    Pagerank(pagerank::PagerankOutput),
    Halo(halo::HaloOutput),
    /// The scheduler-stress microbenchmark's counter values.
    Stress(Vec<u64>),
}

/// The scheduler-stress microbenchmark: `tasks` overhead-dominated tasks
/// over 16 counters. Task bodies are a single increment, so the measured
/// time is almost entirely scheduler hot path (enable, dispatch, pick,
/// steal, complete) — the configuration where lock sharding matters most.
const STRESS_OBJECTS: usize = 16;

fn run_stress(rt: &mut ThreadRuntime, tasks: usize) -> Output {
    let counters: Vec<_> = (0..STRESS_OBJECTS)
        .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
        .collect();
    for i in 0..tasks {
        let c = counters[i % STRESS_OBJECTS];
        rt.submit(TaskBuilder::new("inc").rd_wr(c).body(move |ctx| {
            *ctx.wr(c) += 1;
        }));
    }
    rt.finish();
    Output::Stress(counters.iter().map(|&c| *rt.store().read(c)).collect())
}

/// Run one workload on a fresh runtime; returns its output for the
/// bit-identity checks.
fn run_workload(
    app: Option<App>,
    rt: &mut ThreadRuntime,
    quick: bool,
    stress_tasks: usize,
) -> Output {
    let procs = rt.workers();
    match app {
        Some(App::Water) => {
            let cfg = if quick {
                water::WaterConfig {
                    molecules: 256,
                    iterations: 3,
                    procs,
                    seed: 1995,
                }
            } else {
                water::WaterConfig::paper(procs)
            };
            Output::Water(water::run_on(rt, &cfg))
        }
        Some(App::StringApp) => {
            let cfg = if quick {
                string_app::StringConfig {
                    nx: 48,
                    nz: 96,
                    src_spacing: 8,
                    rcv_spacing: 8,
                    iterations: 3,
                    procs,
                }
            } else {
                string_app::StringConfig::paper(procs)
            };
            Output::StringApp(string_app::run_on(rt, &cfg))
        }
        Some(App::Ocean) => {
            let cfg = if quick {
                ocean::OceanConfig {
                    n: 96,
                    iterations: 60,
                    procs,
                }
            } else {
                ocean::OceanConfig::paper(procs)
            };
            Output::Ocean(ocean::run_on(rt, &cfg))
        }
        Some(App::Cholesky) => {
            let cfg = if quick {
                cholesky::CholeskyConfig {
                    grid: 16,
                    subassemblies: 2,
                    iface: 16,
                    panel_width: 4,
                    procs,
                }
            } else {
                cholesky::CholeskyConfig::paper(procs)
            };
            Output::Cholesky(cholesky::run_on(rt, &cfg))
        }
        Some(App::Pagerank) => {
            let cfg = if quick {
                pagerank::PagerankConfig {
                    nodes: 512,
                    iterations: 6,
                    ..pagerank::PagerankConfig::paper(procs)
                }
            } else {
                pagerank::PagerankConfig::paper(procs)
            };
            Output::Pagerank(pagerank::run_on(rt, &cfg))
        }
        Some(App::Halo) => {
            let cfg = if quick {
                halo::HaloConfig {
                    tiles_x: 8,
                    tiles_y: 8,
                    tile: 8,
                    iterations: 8,
                    ..halo::HaloConfig::paper(procs)
                }
            } else {
                halo::HaloConfig::paper(procs)
            };
            Output::Halo(halo::run_on(rt, &cfg))
        }
        None => run_stress(rt, stress_tasks),
    }
}

fn workload_name(app: Option<App>) -> &'static str {
    match app {
        Some(a) => a.name(),
        None => "SchedStress",
    }
}

/// Trimmed mean: drop the min and max once `reps >= 3`, average the rest.
fn trimmed_mean(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let core = if v.len() >= 3 {
        &v[1..v.len() - 1]
    } else {
        &v[..]
    };
    core.iter().sum::<f64>() / core.len() as f64
}

fn mode_name(mode: SchedMode) -> &'static str {
    match mode {
        SchedMode::Sharded => "Sharded",
        SchedMode::GlobalLock => "GlobalLock",
    }
}

/// The JSON tag for a batch policy: `"1"` (flush per task) or `"auto"`.
fn batch_name(policy: BatchPolicy) -> &'static str {
    match policy {
        BatchPolicy::PerTask => "1",
        BatchPolicy::Auto => "auto",
    }
}

/// Verification pass (untimed): for every workload × worker count, the
/// sharded scheduler and the seed `GlobalLock` scheduler must produce
/// bit-identical application outputs and matching deterministic event
/// counters; at one worker the complete event streams must be identical.
/// Both checks also run across batch policies: batched (`auto`) and
/// per-task (`1`) flushing must be indistinguishable except in speed.
fn verify_modes(quick: bool, stress_tasks: usize, workloads: &[Option<App>]) -> Result<(), String> {
    for &app in workloads {
        let name = workload_name(app);
        for &workers in &WORKER_COUNTS {
            let run = |mode: SchedMode| {
                let mut rt = ThreadRuntime::with_mode(workers, mode);
                rt.enable_events();
                let out = run_workload(app, &mut rt, quick, stress_tasks);
                let events = rt.take_events();
                (out, events)
            };
            // Batched vs per-task flushing, untraced so the drain buffers
            // genuinely fill: outputs must be bit-identical per mode.
            for mode in [SchedMode::Sharded, SchedMode::GlobalLock] {
                let run_policy = |policy: BatchPolicy| {
                    let mut rt = ThreadRuntime::with_mode(workers, mode);
                    rt.set_batch_policy(policy);
                    run_workload(app, &mut rt, quick, stress_tasks)
                };
                if run_policy(BatchPolicy::Auto) != run_policy(BatchPolicy::PerTask) {
                    return Err(format!(
                        "{name} @ {workers} workers {}: batched output differs from batch=1",
                        mode_name(mode)
                    ));
                }
            }
            // Deque A/B: the Chase-Lev owner-LIFO pop order is a legal
            // schedule, so outputs must be bit-identical to the locked
            // FIFO deque and the interleaving-independent counters must
            // match; event *streams* legitimately differ (dispatch order
            // is a scheduling freedom), so they are not compared.
            {
                let run_deque = |deque: DequeImpl| {
                    let mut rt = ThreadRuntime::with_mode(workers, SchedMode::Sharded);
                    rt.set_deque_impl(deque);
                    rt.enable_events();
                    let out = run_workload(app, &mut rt, quick, stress_tasks);
                    let events = rt.take_events();
                    (out, events)
                };
                let (ol, el) = run_deque(DequeImpl::Locked);
                let (oc, ec) = run_deque(DequeImpl::ChaseLev);
                if oc != ol {
                    return Err(format!(
                        "{name} @ {workers} workers: chase-lev output differs from locked deque"
                    ));
                }
                jade_core::check_lifecycle(&ec)
                    .map_err(|e| format!("{name} @ {workers} chase-lev: {e}"))?;
                let counters = |ev: &[jade_core::Event]| {
                    let m = jade_core::Metrics::from_events(ev, workers);
                    (
                        m.tasks_created,
                        m.tasks_enabled,
                        m.tasks_dispatched,
                        m.tasks_started,
                        m.tasks_completed,
                        m.releases,
                    )
                };
                if counters(&ec) != counters(&el) {
                    return Err(format!(
                        "{name} @ {workers} workers: deterministic event counters \
                         diverge between deque impls"
                    ));
                }
            }
            let (oa, ea) = run(SchedMode::Sharded);
            let (ob, eb) = run(SchedMode::GlobalLock);
            if oa != ob {
                return Err(format!(
                    "{name} @ {workers} workers: sharded output differs from GlobalLock"
                ));
            }
            jade_core::check_lifecycle(&ea)
                .map_err(|e| format!("{name} @ {workers} sharded: {e}"))?;
            jade_core::check_lifecycle(&eb)
                .map_err(|e| format!("{name} @ {workers} global: {e}"))?;
            let ma = jade_core::Metrics::from_events(&ea, workers);
            let mb = jade_core::Metrics::from_events(&eb, workers);
            // Steal/locality splits legitimately differ between schedulers;
            // every interleaving-independent counter must agree.
            let det = |m: &jade_core::Metrics| {
                (
                    m.tasks_created,
                    m.tasks_enabled,
                    m.tasks_dispatched,
                    m.tasks_started,
                    m.tasks_completed,
                    m.releases,
                )
            };
            if det(&ma) != det(&mb) {
                return Err(format!(
                    "{name} @ {workers} workers: deterministic event counters diverge \
                     (sharded {:?} vs global {:?})",
                    det(&ma),
                    det(&mb)
                ));
            }
            if workers == 1 {
                // Single worker: both schedulers are deterministic FIFO
                // executors — the streams must match event for event.
                debug_assert_eq!(
                    ea, eb,
                    "{name}: one-worker event streams diverged between modes"
                );
                if ea != eb {
                    return Err(format!("{name}: one-worker event streams diverge"));
                }
            }
        }
        println!("  verified {name}: modes agree at {WORKER_COUNTS:?} workers");
    }
    Ok(())
}

/// Count the tasks a workload submits (timing denominator), cheaply via a
/// serial trace for the apps and directly for the microbenchmark.
fn task_count(app: Option<App>, procs: usize, quick: bool, stress_tasks: usize) -> usize {
    match app {
        Some(a) => a.trace(procs, quick).task_count(),
        None => stress_tasks,
    }
}

/// Sweep-invariant timing parameters shared by every thread-backend row.
struct SweepCfg {
    quick: bool,
    stress_tasks: usize,
    warmup: usize,
    reps: usize,
}

/// Differential steady-state allocation measurement for one scheduler
/// configuration, on the SchedStress shape (mirrors `tests/allocs.rs`):
/// after warming the runtime at the larger batch size, allocations during
/// `finish()` of a 2N-task batch minus an N-task batch, over N — per-batch
/// fixed costs (thread spawns, handle vectors) cancel, so any nonzero
/// value is genuine per-task allocation. `None` when no counting global
/// allocator feeds `crate::alloc` in this binary.
fn measure_allocs_per_task(
    workers: usize,
    mode: SchedMode,
    policy: BatchPolicy,
    deque: Option<DequeImpl>,
) -> Option<f64> {
    if !crate::alloc::counting_active() {
        return None;
    }
    let mut rt = ThreadRuntime::with_mode(workers, mode);
    rt.set_batch_policy(policy);
    if let Some(d) = deque {
        rt.set_deque_impl(d);
    }
    let counters: Vec<_> = (0..STRESS_OBJECTS)
        .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
        .collect();
    let n = 1000usize;
    let submit = |rt: &mut ThreadRuntime, count: usize| {
        for i in 0..count {
            let c = counters[i % STRESS_OBJECTS];
            rt.submit(TaskBuilder::new("inc").rd_wr(c).body(move |ctx| {
                *ctx.wr(c) += 1;
            }));
        }
    };
    for _ in 0..3 {
        submit(&mut rt, 2 * n);
        rt.finish();
    }
    submit(&mut rt, n);
    let (a1, ()) = crate::alloc::allocs_during(|| rt.finish());
    submit(&mut rt, 2 * n);
    let (a2, ()) = crate::alloc::allocs_during(|| rt.finish());
    Some(a2.saturating_sub(a1) as f64 / n as f64)
}

fn time_threads(
    app: Option<App>,
    workers: usize,
    mode: SchedMode,
    policy: BatchPolicy,
    deque: Option<DequeImpl>,
    cfg: &SweepCfg,
) -> BenchResult {
    let SweepCfg {
        quick,
        stress_tasks,
        warmup,
        reps,
    } = *cfg;
    let mut reps_secs = Vec::with_capacity(reps);
    let mut reference: Option<Output> = None;
    let mut sync_locks = (0, 0);
    for i in 0..warmup + reps {
        let mut rt = ThreadRuntime::with_mode(workers, mode);
        rt.set_batch_policy(policy);
        if let Some(d) = deque {
            rt.set_deque_impl(d);
        }
        let t0 = Instant::now();
        let out = run_workload(app, &mut rt, quick, stress_tasks);
        let dt = t0.elapsed().as_secs_f64();
        if i >= warmup {
            reps_secs.push(dt);
        }
        // The lock-amortization figure: acquisitions of the lock guarding
        // the synchronizer across every batch of the run, per executed
        // task. Identical across reps up to idle-flush timing; the last
        // rep's value is reported.
        let total = rt.total_stats();
        sync_locks = (total.sync_locks, total.executed);
        // Bit-identity across repetitions (and hence across schedulers,
        // verified against GlobalLock in `verify_modes`).
        match &reference {
            None => reference = Some(out),
            Some(r) => debug_assert!(*r == out, "nondeterministic benchmark output"),
        }
    }
    // The steady-state allocation figure only makes sense on the
    // overhead-dominated microbenchmark (app bodies allocate freely).
    let allocs_per_task = if app.is_none() {
        measure_allocs_per_task(workers, mode, policy, deque)
    } else {
        None
    };
    BenchResult {
        backend: "threads",
        app: workload_name(app).to_string(),
        workers,
        mode: Some(mode),
        batch: Some(policy),
        deque,
        tasks: task_count(app, workers, quick, stress_tasks),
        secs: trimmed_mean(&reps_secs),
        reps_secs,
        sim_exec_s: None,
        sync_locks: Some(sync_locks),
        allocs_per_task,
    }
}

fn time_sim(app: App, procs: usize, quick: bool, warmup: usize, reps: usize) -> Vec<BenchResult> {
    let trace = app.trace(procs, quick);
    let tasks = trace.task_count();
    let mut out = Vec::new();
    for backend in ["dash", "ipsc"] {
        let mut reps_secs = Vec::with_capacity(reps);
        let mut sim_exec_s = 0.0;
        for i in 0..warmup + reps {
            let t0 = Instant::now();
            sim_exec_s = match backend {
                "dash" => {
                    let spo = app.dash_sec_per_op(&trace);
                    let cfg =
                        jade_dash::DashConfig::paper(procs, jade_core::LocalityMode::Locality, spo);
                    jade_dash::run(&trace, &cfg).exec_time_s
                }
                _ => {
                    let spo = app.ipsc_sec_per_op(&trace);
                    let cfg =
                        jade_ipsc::IpscConfig::paper(procs, jade_core::LocalityMode::Locality, spo);
                    jade_ipsc::run(&trace, &cfg).exec_time_s
                }
            };
            let dt = t0.elapsed().as_secs_f64();
            if i >= warmup {
                reps_secs.push(dt);
            }
        }
        out.push(BenchResult {
            backend: if backend == "dash" { "dash" } else { "ipsc" },
            app: app.name().to_string(),
            workers: procs,
            mode: None,
            batch: None,
            deque: None,
            tasks,
            secs: trimmed_mean(&reps_secs),
            reps_secs,
            sim_exec_s: Some(sim_exec_s),
            sync_locks: None,
            allocs_per_task: None,
        });
    }
    out
}

/// Chain length of the multi-tenant service microbenchmark's DAGs: long
/// enough that per-tenant dependence tracking is exercised, short enough
/// that throughput is dominated by the service hot path (admission,
/// per-tenant synchronizer transitions, shared-pool pick, report
/// assembly) rather than task bodies.
const SERVICE_CHAIN: usize = 16;

/// Push `dags` identical chain DAGs through a shared [`JadeService`] pool
/// and wait for all of them; returns total tasks completed.
fn run_service(workers: usize, dags: usize) -> usize {
    let mut cfg = ServiceConfig::new(workers);
    cfg.max_active = 8;
    cfg.max_pending = dags; // throughput run: pure pipeline, no shedding
    let svc = JadeService::new(cfg);
    let mut ids = Vec::with_capacity(dags);
    for _ in 0..dags {
        let mut prog = Program::new();
        let h = prog.create("acc", 8, 0u64);
        for i in 0..SERVICE_CHAIN {
            prog.submit(TaskBuilder::new("svc").rd_wr(h).body(move |ctx| {
                let mut v = ctx.wr(h);
                *v = v.wrapping_mul(31).wrapping_add(i as u64 + 1);
            }));
        }
        ids.push((
            svc.submit(prog, TenantOptions::default()).expect("admit"),
            h,
        ));
    }
    let mut completed = 0;
    for (id, h) in ids {
        let r = svc.wait(id);
        assert!(matches!(r.outcome, Outcome::Completed), "{:?}", r.outcome);
        completed += r.tasks_completed;
        std::hint::black_box(*r.store.read(h));
    }
    completed
}

fn time_service(workers: usize, dags: usize, warmup: usize, reps: usize) -> BenchResult {
    for _ in 0..warmup {
        run_service(workers, dags);
    }
    let mut reps_secs = Vec::with_capacity(reps);
    let mut tasks = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        tasks = run_service(workers, dags);
        reps_secs.push(t0.elapsed().as_secs_f64());
    }
    BenchResult {
        backend: "service",
        app: "ServiceStress".to_string(),
        workers,
        mode: None,
        batch: None,
        deque: None,
        tasks,
        secs: trimmed_mean(&reps_secs),
        reps_secs,
        sim_exec_s: None,
        sync_locks: None,
        allocs_per_task: None,
    }
}

/// Hard acceptance gates over the thread-backend sweep, each printing a
/// `PASS:` marker line that CI greps for (so a silently-skipped gate
/// fails the build, not just a violated one).
///
/// 1. **Lock amortization (sharded)** — SchedStress Sharded `batch=auto`
///    must take < 1.0 synchronizer-lock acquisitions per task, for every
///    worker count and deque impl.
/// 2. **Lock amortization (global)** — GlobalLock `batch=auto` must also
///    batch (the honest-baseline fix): < 1.0 global-lock *flush*
///    acquisitions per task on SchedStress.
/// 3. **Zero steady-state allocations** — SchedStress Sharded
///    `batch=auto` rows must report `allocs_per_task == 0` (skipped with
///    a `SKIP:` marker when no counting allocator is active).
/// 4. **1-worker throughput** — SchedStress Sharded+auto+ChaseLev must
///    reach at least GlobalLock+auto tasks/s at one worker: the
///    "optimized" scheduler may not lose to the seed baseline even with
///    no parallelism to win back.
fn check_thread_gates(thread_results: &[BenchResult]) -> Result<(), String> {
    let stress = |r: &&BenchResult| r.app == "SchedStress";
    for r in thread_results.iter().filter(stress) {
        if r.batch != Some(BatchPolicy::Auto) {
            continue;
        }
        let per_task = r.lock_acq_per_task().unwrap_or(f64::NAN);
        let mode = r.mode.map_or("?", mode_name);
        let deque = r.deque.map_or("-", |d| d.name());
        // NaN (no lock data) must fail the gate, hence the inverted test.
        if per_task.partial_cmp(&1.0) != Some(std::cmp::Ordering::Less) {
            return Err(format!(
                "lock amortization failed: SchedStress {mode} batch=auto deque={deque} at \
                 {} workers took {per_task:.3} lock acquisitions per task (>= 1.0)",
                r.workers
            ));
        }
        println!(
            "PASS: lock-amortization SchedStress {mode} batch=auto deque={deque} w={} \
             at {per_task:.3} locks/task",
            r.workers
        );
    }
    for r in thread_results.iter().filter(stress) {
        if r.mode != Some(SchedMode::Sharded) || r.batch != Some(BatchPolicy::Auto) {
            continue;
        }
        let deque = r.deque.map_or("-", |d| d.name());
        match r.allocs_per_task {
            Some(a) if a == 0.0 => println!(
                "PASS: zero-alloc SchedStress Sharded batch=auto deque={deque} w={} \
                 at {a:.3} allocs/task",
                r.workers
            ),
            Some(a) => {
                return Err(format!(
                    "steady-state allocation gate failed: SchedStress Sharded batch=auto \
                     deque={deque} at {} workers allocates {a:.3} times per task",
                    r.workers
                ))
            }
            None => println!("SKIP: zero-alloc gate (no counting global allocator in this binary)"),
        }
    }
    let stress_tps = |mode: SchedMode, deque: Option<DequeImpl>| {
        thread_results
            .iter()
            .find(|r| {
                r.app == "SchedStress"
                    && r.workers == 1
                    && r.mode == Some(mode)
                    && r.batch == Some(BatchPolicy::Auto)
                    && r.deque == deque
            })
            .map(|r| r.tasks_per_sec())
    };
    let sharded = stress_tps(SchedMode::Sharded, Some(DequeImpl::ChaseLev))
        .ok_or("missing SchedStress Sharded+auto+chase-lev 1-worker row")?;
    let global = stress_tps(SchedMode::GlobalLock, None)
        .ok_or("missing SchedStress GlobalLock+auto 1-worker row")?;
    if sharded < global {
        return Err(format!(
            "1-worker throughput gate failed: SchedStress Sharded+auto+chase-lev \
             {sharded:.1} tasks/s < GlobalLock+auto {global:.1} tasks/s"
        ));
    }
    println!(
        "PASS: 1-worker-throughput SchedStress Sharded+auto+chase-lev {sharded:.1} >= \
         GlobalLock+auto {global:.1} tasks/s"
    );
    Ok(())
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn render_json(quick: bool, warmup: usize, reps: usize, results: &[BenchResult]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"jade-bench/v3\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"host\": {{ \"cpus\": {cpus} }},\n"));
    s.push_str(&format!("  \"warmup\": {warmup},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str("  \"stat\": \"trimmed_mean\",\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        // Sorted so reruns diff stably: the multiset of rep timings is
        // the measurement; their arrival order is scheduler noise.
        let mut sorted_reps = r.reps_secs.clone();
        sorted_reps.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let reps_list = sorted_reps
            .iter()
            .map(|&x| json_f(x))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"app\": \"{}\", \"workers\": {}, ",
            r.backend, r.app, r.workers
        ));
        if let Some(m) = r.mode {
            s.push_str(&format!("\"mode\": \"{}\", ", mode_name(m)));
        }
        if let Some(b) = r.batch {
            s.push_str(&format!("\"batch\": \"{}\", ", batch_name(b)));
        }
        if let Some(d) = r.deque {
            s.push_str(&format!("\"deque\": \"{}\", ", d.name()));
        }
        s.push_str(&format!(
            "\"tasks\": {}, \"secs\": {}, \"tasks_per_sec\": {}, \"stddev\": {}, \
             \"reps_secs\": [{}]",
            r.tasks,
            json_f(r.secs),
            json_f(r.tasks_per_sec()),
            json_f(r.stddev()),
            reps_list
        ));
        if let Some(sim) = r.sim_exec_s {
            s.push_str(&format!(", \"sim_exec_s\": {}", json_f(sim)));
        }
        if let (Some((locks, _)), Some(per_task)) = (r.sync_locks, r.lock_acq_per_task()) {
            s.push_str(&format!(
                ", \"sync_locks\": {locks}, \"lock_acq_per_task\": {}",
                json_f(per_task)
            ));
        }
        if let Some(a) = r.allocs_per_task {
            s.push_str(&format!(", \"allocs_per_task\": {}", json_f(a)));
        }
        s.push_str(" }");
        if i + 1 < results.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    // A/B speedups per (app, workers, batch): sharded vs GlobalLock
    // tasks/sec, compared at equal batch policy.
    let mut comps = Vec::new();
    for r in results {
        if r.mode != Some(SchedMode::Sharded) {
            continue;
        }
        if let Some(g) = results.iter().find(|o| {
            o.mode == Some(SchedMode::GlobalLock)
                && o.app == r.app
                && o.workers == r.workers
                && o.batch == r.batch
        }) {
            let batch_tag = r
                .batch
                .map(|b| format!("\"batch\": \"{}\", ", batch_name(b)))
                .unwrap_or_default();
            let deque_tag = r
                .deque
                .map(|d| format!("\"deque\": \"{}\", ", d.name()))
                .unwrap_or_default();
            comps.push(format!(
                "    {{ \"app\": \"{}\", \"workers\": {}, {batch_tag}{deque_tag}\
                 \"sharded_tasks_per_sec\": {}, \
                 \"global_lock_tasks_per_sec\": {}, \"speedup\": {} }}",
                r.app,
                r.workers,
                json_f(r.tasks_per_sec()),
                json_f(g.tasks_per_sec()),
                json_f(r.tasks_per_sec() / g.tasks_per_sec().max(1e-12))
            ));
        }
    }
    s.push_str("  \"comparisons\": [\n");
    s.push_str(&comps.join(",\n"));
    if !comps.is_empty() {
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

/// Write atomically-ish: dump to `<path>.tmp`, then rename over `path`
/// (`BENCH_*.tmp` is gitignored, so an interrupted run leaves no debris).
pub(crate) fn write_json(path: &str, body: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, body).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} -> {path}: {e}"))
}

/// Run the full wall-clock benchmark suite. `quick` shrinks both the
/// workloads and the repetition count (CI smoke); the default is the
/// paper-scale data sets.
pub fn run(quick: bool) -> Result<(), String> {
    let warmup = 1;
    let reps = if quick { 3 } else { 5 };
    let stress_tasks = if quick { 2000 } else { 20_000 };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workloads: [Option<App>; 7] = [
        Some(App::Water),
        Some(App::StringApp),
        Some(App::Ocean),
        Some(App::Cholesky),
        Some(App::Pagerank),
        Some(App::Halo),
        None, // SchedStress
    ];

    println!("== repro bench: verification pass (untimed) ==");
    verify_modes(quick, stress_tasks, &workloads)?;

    let counts = worker_counts(cpus);
    if counts.len() < WORKER_COUNTS.len() {
        println!(
            "worker sweep clamped to {counts:?} ({cpus} cpu(s); timing more \
             workers than cpus would measure oversubscription, not scaling)"
        );
    }
    println!("== repro bench: thread backend ({warmup} warmup + {reps} reps, trimmed mean) ==");
    let cfg = SweepCfg {
        quick,
        stress_tasks,
        warmup,
        reps,
    };
    let mut thread_results = Vec::new();
    for &app in &workloads {
        for &workers in &counts {
            for mode in [SchedMode::Sharded, SchedMode::GlobalLock] {
                // The deque A/B only exists in the sharded scheduler.
                let deques: &[Option<DequeImpl>] = match mode {
                    SchedMode::Sharded => &[Some(DequeImpl::Locked), Some(DequeImpl::ChaseLev)],
                    SchedMode::GlobalLock => &[None],
                };
                for &deque in deques {
                    for policy in [BatchPolicy::PerTask, BatchPolicy::Auto] {
                        let r = time_threads(app, workers, mode, policy, deque, &cfg);
                        println!(
                            "  {:>14} w={} {:<10} batch={:<4} deque={:<9} {:>10.1} tasks/s \
                             ({:.4}s, {} tasks, {:.3} locks/task)",
                            r.app,
                            r.workers,
                            mode_name(mode),
                            batch_name(policy),
                            deque.map_or("-", |d| d.name()),
                            r.tasks_per_sec(),
                            r.secs,
                            r.tasks,
                            r.lock_acq_per_task().unwrap_or(f64::NAN)
                        );
                        thread_results.push(r);
                    }
                }
            }
        }
    }
    check_thread_gates(&thread_results)?;
    println!("== repro bench: multi-tenant service ({warmup} warmup + {reps} reps) ==");
    let svc_dags = if quick { 64 } else { 512 };
    for &workers in &counts {
        let r = time_service(workers, svc_dags, warmup, reps);
        println!(
            "  {:>14} w={} {:>10.1} tasks/s ({:.4}s, {svc_dags} DAGs x {SERVICE_CHAIN} tasks)",
            r.app,
            r.workers,
            r.tasks_per_sec(),
            r.secs,
        );
        thread_results.push(r);
    }

    write_json(
        "BENCH_threads.json",
        &render_json(quick, warmup, reps, &thread_results),
    )?;
    println!("wrote BENCH_threads.json");

    println!("== repro bench: simulator host cost ==");
    let mut sim_results = Vec::new();
    for app in App::ALL.into_iter().chain(App::IRREGULAR) {
        for &procs in &WORKER_COUNTS {
            for r in time_sim(app, procs, quick, warmup, reps) {
                println!(
                    "  {:>14} p={} {:<5} host {:.4}s for {} tasks (sim {:.2}s)",
                    r.app,
                    r.workers,
                    r.backend,
                    r.secs,
                    r.tasks,
                    r.sim_exec_s.unwrap_or(0.0)
                );
                sim_results.push(r);
            }
        }
    }
    write_json(
        "BENCH_sim.json",
        &render_json(quick, warmup, reps, &sim_results),
    )?;
    println!("wrote BENCH_sim.json");

    // Sanity floor (not a flaky threshold): with real parallelism
    // available, the widest swept worker count must not be slower than 1
    // worker on Water. The sweep is clamped to `cpus`, so the comparison
    // never measures oversubscription.
    let tps = |workers: usize| {
        thread_results
            .iter()
            .find(|r| {
                r.app == "Water"
                    && r.workers == workers
                    && r.mode == Some(SchedMode::Sharded)
                    && r.batch == Some(BatchPolicy::Auto)
            })
            .map(|r| r.tasks_per_sec())
            .unwrap_or(0.0)
    };
    let wmax = counts.last().copied().unwrap_or(1);
    if cpus >= 2 && wmax > 1 {
        let (t1, tw) = (tps(1), tps(wmax));
        if tw < t1 {
            return Err(format!(
                "sanity floor violated: Water sharded {wmax}-worker throughput \
                 {tw:.1} tasks/s < 1-worker {t1:.1} tasks/s on a {cpus}-cpu host"
            ));
        }
        println!("sanity floor ok: Water sharded {wmax}w {tw:.1} >= 1w {t1:.1} tasks/s");
    } else {
        println!(
            "sanity floor skipped: host has {cpus} cpu(s); \
             worker threads cannot run in parallel here"
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_drops_extremes() {
        assert_eq!(trimmed_mean(&[1.0, 100.0, 2.0, 3.0, 0.0]), 2.0);
        assert_eq!(trimmed_mean(&[5.0, 1.0]), 3.0);
        assert_eq!(trimmed_mean(&[7.0]), 7.0);
    }

    #[test]
    fn stress_workload_is_deterministic_across_modes() {
        let mut a = ThreadRuntime::with_mode(4, SchedMode::Sharded);
        let mut b = ThreadRuntime::with_mode(4, SchedMode::GlobalLock);
        let oa = run_stress(&mut a, 400);
        let ob = run_stress(&mut b, 400);
        assert!(oa == ob);
    }

    #[test]
    fn json_render_is_balanced_and_tagged() {
        let r = BenchResult {
            backend: "threads",
            app: "Water".to_string(),
            workers: 2,
            mode: Some(SchedMode::Sharded),
            batch: Some(BatchPolicy::Auto),
            deque: Some(DequeImpl::ChaseLev),
            tasks: 10,
            secs: 0.5,
            reps_secs: vec![0.6, 0.4, 0.5],
            sim_exec_s: None,
            sync_locks: Some((4, 10)),
            allocs_per_task: Some(0.0),
        };
        let g = BenchResult {
            backend: "threads",
            app: "Water".to_string(),
            workers: 2,
            mode: Some(SchedMode::GlobalLock),
            batch: Some(BatchPolicy::Auto),
            deque: None,
            tasks: 10,
            secs: 1.0,
            reps_secs: vec![1.0, 1.0, 1.0],
            sim_exec_s: None,
            sync_locks: Some((12, 10)),
            allocs_per_task: None,
        };
        let s = render_json(true, 1, 3, &[r, g]);
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "balanced braces:\n{s}"
        );
        assert!(s.contains("\"schema\": \"jade-bench/v3\""));
        assert!(s.contains("\"batch\": \"auto\""));
        assert!(s.contains("\"deque\": \"chase-lev\""));
        assert!(s.contains("\"sync_locks\": 4"));
        assert!(s.contains("\"lock_acq_per_task\": 0.400000"));
        assert!(s.contains("\"allocs_per_task\": 0.000000"));
        assert!(s.contains("\"speedup\": 2.000000"));
        // reps_secs emitted sorted regardless of arrival order.
        assert!(s.contains("\"reps_secs\": [0.400000, 0.500000, 0.600000]"));
    }

    #[test]
    fn stddev_matches_hand_computation() {
        let r = BenchResult {
            backend: "threads",
            app: "X".to_string(),
            workers: 1,
            mode: None,
            batch: None,
            deque: None,
            tasks: 1,
            secs: 2.0,
            reps_secs: vec![1.0, 2.0, 3.0],
            sim_exec_s: None,
            sync_locks: None,
            allocs_per_task: None,
        };
        assert!((r.stddev() - 1.0).abs() < 1e-12);
        let one = BenchResult {
            reps_secs: vec![5.0],
            ..r
        };
        assert_eq!(one.stddev(), 0.0);
    }

    #[test]
    fn worker_sweep_clamps_to_host_cpus() {
        assert_eq!(worker_counts(1), vec![1], "1 always kept");
        assert_eq!(worker_counts(2), vec![1, 2]);
        assert_eq!(worker_counts(3), vec![1, 2]);
        assert_eq!(worker_counts(4), vec![1, 2, 4]);
        assert_eq!(worker_counts(8), vec![1, 2, 4, 8]);
        assert_eq!(worker_counts(64), vec![1, 2, 4, 8]);
    }

    #[test]
    fn batch_policies_agree_on_stress_output() {
        let run = |policy: BatchPolicy| {
            let mut rt = ThreadRuntime::with_mode(4, SchedMode::Sharded);
            rt.set_batch_policy(policy);
            run_stress(&mut rt, 400)
        };
        assert!(run(BatchPolicy::Auto) == run(BatchPolicy::PerTask));
    }
}
