//! Run management: trace caching, machine-run helpers, table formatting.

use crate::apps::App;
use jade_core::{LocalityMode, Trace};
use jade_dash::{DashConfig, DashRunResult};
use jade_ipsc::{IpscConfig, IpscRunResult, PinnedSchedule};
use std::collections::HashMap;
use std::rc::Rc;

/// The processor counts of every experiment in the paper.
pub const PROCS: [usize; 7] = [1, 2, 4, 8, 16, 24, 32];

/// Which machine model a [`Harness::chrome_trace`] export runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceBackend {
    Dash,
    Ipsc,
}

/// Caches generated traces so each (app, procs) workload is built once.
pub struct Harness {
    pub quick: bool,
    traces: HashMap<(App, usize), Rc<Trace>>,
}

impl Harness {
    pub fn new(quick: bool) -> Harness {
        Harness {
            quick,
            traces: HashMap::new(),
        }
    }

    pub fn trace(&mut self, app: App, procs: usize) -> Rc<Trace> {
        let quick = self.quick;
        Rc::clone(
            self.traces
                .entry((app, procs))
                .or_insert_with(|| Rc::new(app.trace(procs, quick))),
        )
    }

    /// Run `app` on the simulated DASH.
    pub fn dash(&mut self, app: App, procs: usize, mode: LocalityMode) -> DashRunResult {
        let trace = self.trace(app, procs);
        let spo = app.dash_sec_per_op(&trace);
        jade_dash::run(&trace, &DashConfig::paper(procs, mode, spo))
    }

    /// Run `app` on the simulated DASH with a tweaked configuration.
    pub fn dash_with(
        &mut self,
        app: App,
        procs: usize,
        mode: LocalityMode,
        f: impl FnOnce(&mut DashConfig),
    ) -> DashRunResult {
        let trace = self.trace(app, procs);
        let spo = app.dash_sec_per_op(&trace);
        let mut cfg = DashConfig::paper(procs, mode, spo);
        f(&mut cfg);
        jade_dash::run(&trace, &cfg)
    }

    /// Run `app` on the simulated iPSC/860.
    pub fn ipsc(&mut self, app: App, procs: usize, mode: LocalityMode) -> IpscRunResult {
        self.ipsc_with(app, procs, mode, |_| {})
    }

    /// Run `app` on the simulated iPSC/860 with a tweaked configuration.
    pub fn ipsc_with(
        &mut self,
        app: App,
        procs: usize,
        mode: LocalityMode,
        f: impl FnOnce(&mut IpscConfig),
    ) -> IpscRunResult {
        let trace = self.trace(app, procs);
        let spo = app.ipsc_sec_per_op(&trace);
        let mut cfg = IpscConfig::paper(procs, mode, spo);
        f(&mut cfg);
        jade_ipsc::run(&trace, &cfg)
    }

    /// Controlled iPSC comparison: run a baseline with the `base` tweaks
    /// and record its schedule, then run again with `tweak` applied on top,
    /// replaying the baseline's task placement and per-processor start
    /// order ([`IpscConfig::pinned`]). Holding the schedule fixed isolates
    /// the communication effect of the tweak from list-scheduling timing
    /// anomalies — with identical task sets and per-processor order, a
    /// change that only makes data available earlier can only move task
    /// starts earlier (DESIGN.md §17). Returns `(baseline, tweaked)`.
    pub fn ipsc_controlled(
        &mut self,
        app: App,
        procs: usize,
        mode: LocalityMode,
        base: impl FnOnce(&mut IpscConfig),
        tweak: impl FnOnce(&mut IpscConfig),
    ) -> (IpscRunResult, IpscRunResult) {
        let trace = self.trace(app, procs);
        let spo = app.ipsc_sec_per_op(&trace);
        let mut cfg = IpscConfig::paper(procs, mode, spo);
        base(&mut cfg);
        let (off, events) = jade_ipsc::run_traced(&trace, &cfg);
        let mut cfg_on = cfg.clone();
        tweak(&mut cfg_on);
        cfg_on.pinned = Some(PinnedSchedule::from_events(trace.tasks.len(), &events));
        let on = jade_ipsc::run(&trace, &cfg_on);
        (off, on)
    }

    /// Run `app` with event recording on the chosen machine model and
    /// render the stream as a Chrome `trace_event` JSON document (load it
    /// in `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn chrome_trace(
        &mut self,
        app: App,
        procs: usize,
        mode: LocalityMode,
        backend: TraceBackend,
    ) -> String {
        let trace = self.trace(app, procs);
        let events = match backend {
            TraceBackend::Dash => {
                let spo = app.dash_sec_per_op(&trace);
                jade_dash::run_traced(&trace, &DashConfig::paper(procs, mode, spo)).1
            }
            TraceBackend::Ipsc => {
                let spo = app.ipsc_sec_per_op(&trace);
                jade_ipsc::run_traced(&trace, &IpscConfig::paper(procs, mode, spo)).1
            }
        };
        let mut out = Vec::new();
        jade_core::chrome::write_chrome_trace(&mut out, &events)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("chrome trace output is UTF-8")
    }

    /// The locality levels reported for an app (Task Placement only where
    /// the programmer provides placements).
    pub fn modes_for(&self, app: App) -> Vec<LocalityMode> {
        if app.has_placement() {
            vec![
                LocalityMode::TaskPlacement,
                LocalityMode::Locality,
                LocalityMode::NoLocality,
            ]
        } else {
            vec![LocalityMode::Locality, LocalityMode::NoLocality]
        }
    }
}

/// Format one table row: a label plus one value per processor count.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:>16} |");
    for v in values {
        s.push_str(&format!(" {v:>9.2}"));
    }
    s
}

/// Format the standard header with the processor counts.
pub fn header(title: &str) -> String {
    let mut s = format!("{title}\n{:>16} |", "procs");
    for p in PROCS {
        s.push_str(&format!(" {p:>9}"));
    }
    s.push('\n');
    s.push_str(&"-".repeat(18 + 10 * PROCS.len()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cache_reuses() {
        let mut h = Harness::new(true);
        let a = h.trace(App::Cholesky, 2);
        let b = h.trace(App::Cholesky, 2);
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn quick_dash_and_ipsc_runs_complete() {
        let mut h = Harness::new(true);
        let d = h.dash(App::Cholesky, 4, LocalityMode::Locality);
        assert!(d.exec_time_s > 0.0);
        let i = h.ipsc(App::Cholesky, 4, LocalityMode::TaskPlacement);
        assert!(i.exec_time_s > 0.0);
    }

    #[test]
    fn modes_per_app() {
        let h = Harness::new(true);
        assert_eq!(h.modes_for(App::Water).len(), 2);
        assert_eq!(h.modes_for(App::Ocean).len(), 3);
    }

    #[test]
    fn chrome_trace_exports_and_validates() {
        let mut h = Harness::new(true);
        for backend in [TraceBackend::Dash, TraceBackend::Ipsc] {
            let json = h.chrome_trace(App::Cholesky, 4, LocalityMode::Locality, backend);
            let n = jade_core::chrome::validate_chrome_trace(&json, 4)
                .unwrap_or_else(|e| panic!("{backend:?}: {e}"));
            assert!(n > 0, "{backend:?} produced an empty trace");
        }
    }

    #[test]
    fn formatting() {
        let hd = header("Table X");
        assert!(hd.contains("Table X"));
        let r = row("Locality", &[1.0, 2.0]);
        assert!(r.contains("Locality"));
        assert!(r.contains("2.00"));
    }
}
