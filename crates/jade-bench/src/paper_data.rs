//! The paper's published measurements, transcribed from Tables 1–14, for
//! side-by-side comparison with our reproduction. `None` marks the one
//! missing entry in the paper (Table 8, No Locality at 16 processors).

/// Processor counts of the tables' columns.
pub const PROCS: [usize; 7] = [1, 2, 4, 8, 16, 24, 32];

pub struct SerialRow {
    pub app: &'static str,
    pub serial: f64,
    pub stripped: f64,
}

/// Table 1: serial and stripped execution times on DASH (seconds).
pub const TABLE1_DASH: [SerialRow; 4] = [
    SerialRow {
        app: "Water",
        serial: 3628.29,
        stripped: 3285.90,
    },
    SerialRow {
        app: "String",
        serial: 20594.50,
        stripped: 19314.80,
    },
    SerialRow {
        app: "Ocean",
        serial: 102.99,
        stripped: 100.03,
    },
    SerialRow {
        app: "Panel Cholesky",
        serial: 26.67,
        stripped: 28.91,
    },
];

/// Table 6: serial and stripped execution times on the iPSC/860 (seconds).
pub const TABLE6_IPSC: [SerialRow; 4] = [
    SerialRow {
        app: "Water",
        serial: 2482.91,
        stripped: 2406.72,
    },
    SerialRow {
        app: "String",
        serial: 20270.45,
        stripped: 19629.42,
    },
    SerialRow {
        app: "Ocean",
        serial: 54.19,
        stripped: 60.99,
    },
    SerialRow {
        app: "Panel Cholesky",
        serial: 27.60,
        stripped: 28.53,
    },
];

pub type Row = [Option<f64>; 7];

pub struct ExecTable {
    pub label: &'static str,
    /// (mode name, row) in the paper's order.
    pub rows: &'static [(&'static str, Row)],
}

/// Table 2: Water on DASH.
pub fn table2() -> ExecTable {
    ExecTable {
        label: "Table 2: Execution Times for Water on DASH (seconds)",
        rows: &[
            (
                "Locality",
                [
                    Some(3270.71),
                    Some(1648.96),
                    Some(833.19),
                    Some(423.14),
                    Some(220.63),
                    Some(153.03),
                    Some(119.48),
                ],
            ),
            (
                "No Locality",
                [
                    Some(3290.47),
                    Some(1648.60),
                    Some(832.91),
                    Some(434.36),
                    Some(229.84),
                    Some(160.82),
                    Some(124.74),
                ],
            ),
        ],
    }
}

/// Table 3: String on DASH.
pub fn table3() -> ExecTable {
    ExecTable {
        label: "Table 3: Execution Times for String on DASH (seconds)",
        rows: &[
            (
                "Locality",
                [
                    Some(19621.15),
                    Some(9774.07),
                    Some(5003.69),
                    Some(2534.62),
                    Some(1320.00),
                    Some(903.95),
                    Some(705.84),
                ],
            ),
            (
                "No Locality",
                [
                    Some(19396.12),
                    Some(9756.71),
                    Some(5017.82),
                    Some(2559.44),
                    Some(1350.06),
                    Some(948.73),
                    Some(769.21),
                ],
            ),
        ],
    }
}

/// Table 4: Ocean on DASH.
pub fn table4() -> ExecTable {
    ExecTable {
        label: "Table 4: Execution Times for Ocean on DASH (seconds)",
        rows: &[
            (
                "Task Placement",
                [
                    Some(105.21),
                    Some(105.36),
                    Some(36.36),
                    Some(16.14),
                    Some(9.24),
                    Some(8.39),
                    Some(10.71),
                ],
            ),
            (
                "Locality",
                [
                    Some(105.33),
                    Some(99.22),
                    Some(37.79),
                    Some(25.30),
                    Some(17.58),
                    Some(14.52),
                    Some(13.26),
                ],
            ),
            (
                "No Locality",
                [
                    Some(104.51),
                    Some(99.20),
                    Some(38.97),
                    Some(31.21),
                    Some(22.31),
                    Some(18.88),
                    Some(17.31),
                ],
            ),
        ],
    }
}

/// Table 5: Panel Cholesky on DASH.
pub fn table5() -> ExecTable {
    ExecTable {
        label: "Table 5: Execution Times for Panel Cholesky on DASH (seconds)",
        rows: &[
            (
                "Task Placement",
                [
                    Some(35.71),
                    Some(33.64),
                    Some(15.24),
                    Some(7.82),
                    Some(5.95),
                    Some(5.61),
                    Some(5.76),
                ],
            ),
            (
                "Locality",
                [
                    Some(34.94),
                    Some(17.99),
                    Some(11.77),
                    Some(7.53),
                    Some(7.30),
                    Some(7.43),
                    Some(7.86),
                ],
            ),
            (
                "No Locality",
                [
                    Some(35.09),
                    Some(18.99),
                    Some(12.97),
                    Some(9.29),
                    Some(7.88),
                    Some(8.00),
                    Some(8.48),
                ],
            ),
        ],
    }
}

/// Table 7: Water on the iPSC/860.
pub fn table7() -> ExecTable {
    ExecTable {
        label: "Table 7: Execution Times for Water on the iPSC/860 (seconds)",
        rows: &[
            (
                "Locality",
                [
                    Some(2435.16),
                    Some(1219.71),
                    Some(617.28),
                    Some(315.69),
                    Some(165.64),
                    Some(118.09),
                    Some(91.53),
                ],
            ),
            (
                "No Locality",
                [
                    Some(2454.78),
                    Some(1231.91),
                    Some(623.34),
                    Some(318.34),
                    Some(167.77),
                    Some(119.72),
                    Some(93.11),
                ],
            ),
        ],
    }
}

/// Table 8: String on the iPSC/860 (one entry missing in the paper).
pub fn table8() -> ExecTable {
    ExecTable {
        label: "Table 8: Execution Times for String on the iPSC/860 (seconds)",
        rows: &[
            (
                "Locality",
                [
                    Some(17382.07),
                    Some(9473.24),
                    Some(4773.02),
                    Some(2418.75),
                    Some(1249.69),
                    Some(873.14),
                    Some(678.55),
                ],
            ),
            (
                "No Locality",
                [
                    Some(18873.86),
                    Some(9529.52),
                    Some(4765.96),
                    Some(2424.12),
                    None,
                    Some(869.27),
                    Some(680.94),
                ],
            ),
        ],
    }
}

/// Table 9: Ocean on the iPSC/860.
pub fn table9() -> ExecTable {
    ExecTable {
        label: "Table 9: Execution Times for Ocean on the iPSC/860 (seconds)",
        rows: &[
            (
                "Task Placement",
                [
                    Some(77.44),
                    Some(68.14),
                    Some(28.75),
                    Some(18.77),
                    Some(24.16),
                    Some(37.18),
                    Some(51.87),
                ],
            ),
            (
                "Locality",
                [
                    Some(77.71),
                    Some(93.74),
                    Some(95.95),
                    Some(57.28),
                    Some(39.50),
                    Some(44.48),
                    Some(55.96),
                ],
            ),
            (
                "No Locality",
                [
                    Some(78.03),
                    Some(100.29),
                    Some(159.77),
                    Some(88.86),
                    Some(56.33),
                    Some(55.56),
                    Some(63.58),
                ],
            ),
        ],
    }
}

/// Table 10: Panel Cholesky on the iPSC/860.
pub fn table10() -> ExecTable {
    ExecTable {
        label: "Table 10: Execution Times for Panel Cholesky on the iPSC/860 (seconds)",
        rows: &[
            (
                "Task Placement",
                [
                    Some(54.56),
                    Some(50.18),
                    Some(31.56),
                    Some(32.50),
                    Some(34.41),
                    Some(36.38),
                    Some(38.17),
                ],
            ),
            (
                "Locality",
                [
                    Some(54.54),
                    Some(34.17),
                    Some(33.65),
                    Some(35.97),
                    Some(43.73),
                    Some(47.62),
                    Some(50.83),
                ],
            ),
            (
                "No Locality",
                [
                    Some(54.43),
                    Some(107.43),
                    Some(99.39),
                    Some(75.84),
                    Some(59.02),
                    Some(56.41),
                    Some(59.45),
                ],
            ),
        ],
    }
}

/// Tables 11–14: adaptive broadcast on/off on the iPSC/860.
pub fn bcast_table(app: &str) -> ExecTable {
    match app {
        "Water" => ExecTable {
            label: "Table 11: Water on the iPSC/860, adaptive broadcast (seconds)",
            rows: &[
                (
                    "Adaptive Bcast",
                    [
                        Some(2435.16),
                        Some(1219.71),
                        Some(617.28),
                        Some(315.69),
                        Some(165.64),
                        Some(118.09),
                        Some(91.53),
                    ],
                ),
                (
                    "No Adapt Bcast",
                    [
                        Some(2459.87),
                        Some(1233.98),
                        Some(625.27),
                        Some(323.84),
                        Some(180.15),
                        Some(140.59),
                        Some(122.74),
                    ],
                ),
            ],
        },
        "String" => ExecTable {
            label: "Table 12: String on the iPSC/860, adaptive broadcast (seconds)",
            rows: &[
                (
                    "Adaptive Bcast",
                    [
                        Some(17382.07),
                        Some(9473.24),
                        Some(4773.02),
                        Some(2418.75),
                        Some(1249.69),
                        Some(873.14),
                        Some(678.55),
                    ],
                ),
                (
                    "No Adapt Bcast",
                    [
                        Some(18877.42),
                        Some(9469.36),
                        Some(4765.68),
                        Some(2425.82),
                        Some(1255.29),
                        Some(874.18),
                        Some(689.57),
                    ],
                ),
            ],
        },
        "Ocean" => ExecTable {
            label: "Table 13: Ocean on the iPSC/860, adaptive broadcast (seconds)",
            rows: &[
                (
                    "Adaptive Bcast",
                    [
                        Some(77.44),
                        Some(68.14),
                        Some(28.75),
                        Some(18.77),
                        Some(24.16),
                        Some(37.18),
                        Some(51.87),
                    ],
                ),
                (
                    "No Adapt Bcast",
                    [
                        Some(63.14),
                        Some(65.54),
                        Some(28.73),
                        Some(19.11),
                        Some(25.68),
                        Some(39.99),
                        Some(55.71),
                    ],
                ),
            ],
        },
        _ => ExecTable {
            label: "Table 14: Panel Cholesky on the iPSC/860, adaptive broadcast (seconds)",
            rows: &[
                (
                    "Adaptive Bcast",
                    [
                        Some(54.56),
                        Some(50.18),
                        Some(31.56),
                        Some(32.50),
                        Some(34.41),
                        Some(36.38),
                        Some(38.17),
                    ],
                ),
                (
                    "No Adapt Bcast",
                    [
                        Some(37.25),
                        Some(49.76),
                        Some(31.29),
                        Some(32.01),
                        Some(34.92),
                        Some(35.87),
                        Some(38.16),
                    ],
                ),
            ],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_seven_columns() {
        for t in [
            table2(),
            table3(),
            table4(),
            table5(),
            table7(),
            table8(),
            table9(),
            table10(),
        ] {
            for (_, row) in t.rows {
                assert_eq!(row.len(), 7);
            }
        }
    }

    #[test]
    fn bcast_tables_exist_for_all_apps() {
        for a in ["Water", "String", "Ocean", "Panel Cholesky"] {
            assert!(bcast_table(a).label.contains("iPSC"));
        }
    }

    #[test]
    fn table8_missing_entry() {
        let t = table8();
        assert!(t.rows[1].1[4].is_none());
    }
}
