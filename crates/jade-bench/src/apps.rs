//! Uniform interface over the applications for the experiment harness.

use jade_apps::{cholesky, halo, ocean, pagerank, string_app, water};
use jade_core::Trace;

/// The paper's application set plus the two irregular applications
/// (data-dependent access sets; see DESIGN.md §15).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum App {
    Water,
    StringApp,
    Ocean,
    Cholesky,
    Pagerank,
    Halo,
}

impl App {
    /// The paper's four applications — the set every paper table and
    /// figure zips against. Deliberately excludes the irregular apps.
    pub const ALL: [App; 4] = [App::Water, App::StringApp, App::Ocean, App::Cholesky];

    /// The two irregular applications driving the aggregation experiments.
    pub const IRREGULAR: [App; 2] = [App::Pagerank, App::Halo];

    pub fn name(self) -> &'static str {
        match self {
            App::Water => "Water",
            App::StringApp => "String",
            App::Ocean => "Ocean",
            App::Cholesky => "Panel Cholesky",
            App::Pagerank => "PageRank",
            App::Halo => "Halo",
        }
    }

    /// Every CLI key accepted by [`App::parse`], in presentation order
    /// (`repro --list-apps` and the unknown-name error print these).
    pub const CLI_NAMES: [&'static str; 6] =
        ["water", "string", "ocean", "cholesky", "pagerank", "halo"];

    /// Parse a user-facing app name (CLI `--app`).
    pub fn parse(s: &str) -> Option<App> {
        match s.to_ascii_lowercase().as_str() {
            "water" => Some(App::Water),
            "string" => Some(App::StringApp),
            "ocean" => Some(App::Ocean),
            "cholesky" => Some(App::Cholesky),
            "pagerank" => Some(App::Pagerank),
            "halo" => Some(App::Halo),
            _ => None,
        }
    }

    /// Does the programmer provide explicit task placement for this app?
    /// (Paper Section 5.2: only Ocean and Panel Cholesky; the irregular
    /// apps also place tasks, at their data's home.)
    pub fn has_placement(self) -> bool {
        matches!(self, App::Ocean | App::Cholesky | App::Pagerank | App::Halo)
    }

    /// Generate the program trace for `procs` processors at the given
    /// scale. `quick` uses reduced workloads for smoke runs.
    pub fn trace(self, procs: usize, quick: bool) -> Trace {
        match self {
            App::Water => {
                let cfg = if quick {
                    water::WaterConfig {
                        molecules: 256,
                        iterations: 3,
                        procs,
                        seed: 1995,
                    }
                } else {
                    water::WaterConfig::paper(procs)
                };
                water::run_trace(&cfg).0
            }
            App::StringApp => {
                let cfg = if quick {
                    string_app::StringConfig {
                        nx: 48,
                        nz: 96,
                        src_spacing: 8,
                        rcv_spacing: 8,
                        iterations: 3,
                        procs,
                    }
                } else {
                    string_app::StringConfig::paper(procs)
                };
                string_app::run_trace(&cfg).0
            }
            App::Ocean => {
                let cfg = if quick {
                    ocean::OceanConfig {
                        n: 96,
                        iterations: 60,
                        procs,
                    }
                } else {
                    ocean::OceanConfig::paper(procs)
                };
                ocean::run_trace(&cfg).0
            }
            App::Cholesky => {
                let cfg = if quick {
                    cholesky::CholeskyConfig {
                        grid: 16,
                        subassemblies: 2,
                        iface: 16,
                        panel_width: 4,
                        procs,
                    }
                } else {
                    cholesky::CholeskyConfig::paper(procs)
                };
                cholesky::run_trace(&cfg).0
            }
            App::Pagerank => {
                let cfg = if quick {
                    // Denser than paper scale relative to its size: the
                    // quick graph must still give every partition edges
                    // into most others, or the aggregation sweep would
                    // measure graph sparsity instead of coalescing.
                    pagerank::PagerankConfig {
                        nodes: 512,
                        edges_per_node: 8,
                        iterations: 6,
                        ..pagerank::PagerankConfig::paper(procs)
                    }
                } else {
                    pagerank::PagerankConfig::paper(procs)
                };
                pagerank::run_trace(&cfg).0
            }
            App::Halo => {
                let cfg = if quick {
                    halo::HaloConfig {
                        tiles_x: 8,
                        tiles_y: 8,
                        tile: 8,
                        iterations: 8,
                        ..halo::HaloConfig::paper(procs)
                    }
                } else {
                    halo::HaloConfig::paper(procs)
                };
                halo::run_trace(&cfg).0
            }
        }
    }

    /// Paper-measured calibration anchors:
    /// (DASH serial, DASH stripped, iPSC serial, iPSC stripped) seconds.
    pub fn calib(self) -> (f64, f64, f64, f64) {
        match self {
            App::Water => (
                water::calib::DASH_SERIAL_S,
                water::calib::DASH_STRIPPED_S,
                water::calib::IPSC_SERIAL_S,
                water::calib::IPSC_STRIPPED_S,
            ),
            App::StringApp => (
                string_app::calib::DASH_SERIAL_S,
                string_app::calib::DASH_STRIPPED_S,
                string_app::calib::IPSC_SERIAL_S,
                string_app::calib::IPSC_STRIPPED_S,
            ),
            App::Ocean => (
                ocean::calib::DASH_SERIAL_S,
                ocean::calib::DASH_STRIPPED_S,
                ocean::calib::IPSC_SERIAL_S,
                ocean::calib::IPSC_STRIPPED_S,
            ),
            App::Cholesky => (
                cholesky::calib::DASH_SERIAL_S,
                cholesky::calib::DASH_STRIPPED_S,
                cholesky::calib::IPSC_SERIAL_S,
                cholesky::calib::IPSC_STRIPPED_S,
            ),
            App::Pagerank => (
                pagerank::calib::DASH_SERIAL_S,
                pagerank::calib::DASH_STRIPPED_S,
                pagerank::calib::IPSC_SERIAL_S,
                pagerank::calib::IPSC_STRIPPED_S,
            ),
            App::Halo => (
                halo::calib::DASH_SERIAL_S,
                halo::calib::DASH_STRIPPED_S,
                halo::calib::IPSC_SERIAL_S,
                halo::calib::IPSC_STRIPPED_S,
            ),
        }
    }

    /// Seconds of compute per abstract operation on DASH, calibrated so the
    /// one-processor Jade run lands on the paper's stripped serial time.
    pub fn dash_sec_per_op(self, trace: &Trace) -> f64 {
        let (_, stripped, _, _) = self.calib();
        stripped / trace.total_work()
    }

    /// Seconds of compute per abstract operation on the iPSC/860.
    pub fn ipsc_sec_per_op(self, trace: &Trace) -> f64 {
        let (_, _, _, stripped) = self.calib();
        stripped / trace.total_work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_names_round_trip_through_parse() {
        // The advertised list must stay in sync with the parser: every
        // listed key parses, and every app is reachable from the list.
        let parsed: Vec<App> = App::CLI_NAMES
            .iter()
            .map(|n| App::parse(n).unwrap_or_else(|| panic!("listed name `{n}` must parse")))
            .collect();
        for app in App::ALL.into_iter().chain(App::IRREGULAR) {
            assert!(
                parsed.contains(&app),
                "{} missing from CLI_NAMES",
                app.name()
            );
        }
        assert_eq!(App::parse("no-such-app"), None);
    }

    #[test]
    fn quick_traces_build_for_every_app() {
        for app in App::ALL.into_iter().chain(App::IRREGULAR) {
            let t = app.trace(4, true);
            assert!(t.task_count() > 0, "{:?}", app);
            assert!(t.validate().is_empty());
            assert!(app.dash_sec_per_op(&t) > 0.0);
            assert!(app.ipsc_sec_per_op(&t) > 0.0);
        }
    }

    #[test]
    fn placement_flags() {
        assert!(!App::Water.has_placement());
        assert!(!App::StringApp.has_placement());
        assert!(App::Ocean.has_placement());
        assert!(App::Cholesky.has_placement());
        assert!(App::Pagerank.has_placement());
        assert!(App::Halo.has_placement());
    }

    #[test]
    fn app_names_parse() {
        for app in App::ALL.into_iter().chain(App::IRREGULAR) {
            let key = match app {
                App::StringApp => "string".to_string(),
                App::Cholesky => "cholesky".to_string(),
                other => other.name().to_ascii_lowercase(),
            };
            assert_eq!(App::parse(&key), Some(app), "{key}");
        }
        assert_eq!(App::parse("nope"), None);
    }
}
