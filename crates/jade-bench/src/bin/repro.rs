//! `repro` — regenerate every table and figure of Rinard, SC'95.
//!
//! ```text
//! repro [--quick] all              # the whole evaluation section
//! repro table1 table6              # serial/stripped calibration anchors
//! repro table2 .. table5           # DASH execution times
//! repro table7 .. table10          # iPSC execution times
//! repro table11 .. table14         # adaptive broadcast
//! repro fig2 .. fig5, fig12..fig15 # task locality percentages
//! repro fig6 .. fig9               # DASH total task execution time
//! repro fig10 fig11 fig20 fig21    # task management percentages
//! repro fig16 .. fig19             # iPSC comm/computation ratios
//! repro replication                # Section 5.1
//! repro bcast-analysis             # Section 5.3 numbers
//! repro latency-hiding             # Section 5.4
//! repro concurrent-fetch           # Section 5.5
//! ```
//!
//! `--quick` substitutes reduced workloads (for smoke runs); the default is
//! the paper-scale data sets.

use dsim::FaultPlan;
use jade_bench::experiments as ex;
use jade_bench::{App, Harness, TraceBackend};
use jade_core::LocalityMode;

/// Counting global allocator feeding `jade_bench::alloc`, so `repro
/// bench` can report `allocs_per_task`. Lives in this binary root (not
/// the library, which is `#![forbid(unsafe_code)]`); the identical shim
/// appears in the workspace `tests/allocs.rs`.
struct CountingAlloc;

// SAFETY: pure delegation to the system allocator — same layout
// contracts, same returned pointers; the only addition is a relaxed
// counter increment on the allocating paths.
#[allow(unsafe_code)]
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        jade_bench::alloc::note_alloc();
        std::alloc::GlobalAlloc::alloc(&std::alloc::System, layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::GlobalAlloc::dealloc(&std::alloc::System, ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        jade_bench::alloc::note_alloc();
        std::alloc::GlobalAlloc::realloc(&std::alloc::System, ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--trace-out FILE] [--faults SPEC] [--fault-seed N]\n\
         \x20            [--checkpoint-interval N]... [--app NAME [--aggregate] [--prefetch]]\n\
         \x20            <experiment>...\n\
         experiments: all, tables, figures, table1..table14, fig2..fig21,\n\
         replication, bcast-analysis, latency-hiding, concurrent-fetch, ablations,\n\
         utilization, fault-sweep, checkpoint-sweep, aggregation-sweep,\n\
         overlap-sweep, service-stress, tune-sweep, bench\n\
         --app NAME        run one application on the simulated iPSC/860 and\n\
                           print its communication profile; NAME is one of\n\
                           water, string, ocean, cholesky, pagerank, halo\n\
         --list-apps       list the valid --app names and exit\n\
         service-stress: multi-tenant service robustness gate — thousands of\n\
                mixed clean/faulty/deadline DAGs through one shared worker\n\
                pool; writes SERVICE_tenants.json at the repo root\n\
         tune-sweep: feedback-controller gate — on every app, the controller\n\
                must land within 5% of the best static knob setting in the\n\
                sweep grid, bit-identically across repeats; writes\n\
                TUNE_sweep.json at the repo root\n\
         --aggregate       enable the inspector/executor fetch-aggregation\n\
                           pass (DESIGN.md \u{a7}15) for --app runs\n\
         --prefetch        enable the split-phase prefetch path (DESIGN.md \u{a7}17)\n\
                           for --app runs\n\
         bench: wall-clock (host Instant) benchmark of the thread backend\n\
                (Sharded vs GlobalLock, 1/2/4/8 workers) and the simulators;\n\
                writes BENCH_threads.json + BENCH_sim.json at the repo root\n\
         --trace-out FILE  also write a Chrome trace_event JSON of a\n\
                           representative run (Ocean, 8 procs, iPSC/860);\n\
                           open it in chrome://tracing or ui.perfetto.dev\n\
         --faults SPEC     inject faults and run the fault sweep; SPEC is\n\
                           e.g. drop=0.05,dup=0.02,delay=0.1:0.001,stall=0.01:0.005,\n\
                           fail=3@0.5,panic=0.1,ckpt=0.5 (see DESIGN.md sections 11-12)\n\
         --fault-seed N    seed for the fault decision stream (default 0)\n\
         --checkpoint-interval N\n\
                           checkpoint interval for the checkpoint sweep, in\n\
                           simulated seconds (iPSC) / completed tasks (threads);\n\
                           repeatable — each value adds a sweep point\n\
                           (default points: 0.5 and 2.0)"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut trace_out: Option<String> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut fault_seed: Option<u64> = None;
    let mut ckpt_intervals: Vec<f64> = Vec::new();
    let mut wanted: Vec<String> = Vec::new();
    let mut single_app: Option<App> = None;
    let mut aggregate = false;
    let mut prefetch = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--app" => match args.next() {
                Some(name) => match App::parse(&name) {
                    Some(app) => single_app = Some(app),
                    None => {
                        eprintln!(
                            "unknown app `{name}`; valid names: {}",
                            App::CLI_NAMES.join(", ")
                        );
                        std::process::exit(2);
                    }
                },
                None => usage(),
            },
            "--list-apps" => {
                for name in App::CLI_NAMES {
                    let app = App::parse(name).expect("listed name parses");
                    println!("{name:<10} {}", app.name());
                }
                std::process::exit(0);
            }
            "--aggregate" => aggregate = true,
            "--prefetch" => prefetch = true,
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => usage(),
            },
            "--faults" => match args.next().map(|s| FaultPlan::parse(&s)) {
                Some(Ok(plan)) => faults = Some(plan),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
                None => usage(),
            },
            "--fault-seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => fault_seed = Some(n),
                None => usage(),
            },
            "--checkpoint-interval" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(n) if n.is_finite() && n > 0.0 => ckpt_intervals.push(n),
                _ => usage(),
            },
            "-h" | "--help" => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    // `--faults` with no explicit experiment runs the fault sweep;
    // `--checkpoint-interval` alone runs the checkpoint sweep.
    if wanted.is_empty() {
        if !ckpt_intervals.is_empty() {
            wanted.push("checkpoint-sweep".to_string());
        } else if faults.is_some() {
            wanted.push("fault-sweep".to_string());
        }
    }
    if ckpt_intervals.is_empty() {
        ckpt_intervals = vec![0.5, 2.0];
    }
    // `--aggregate` / `--prefetch` are per-app toggles; without `--app`
    // they would be silently ignored, so reject the invocation instead.
    if single_app.is_none() {
        for (flag, set) in [("--aggregate", aggregate), ("--prefetch", prefetch)] {
            if set {
                eprintln!("{flag} requires --app NAME (see --list-apps)");
                std::process::exit(2);
            }
        }
    }
    if wanted.is_empty() && trace_out.is_none() && single_app.is_none() {
        usage();
    }
    let mut plan = faults.unwrap_or_else(|| {
        FaultPlan::parse("drop=0.05,dup=0.02").expect("default fault plan parses")
    });
    if let Some(seed) = fault_seed {
        plan = plan.with_seed(seed);
    }
    let mut h = Harness::new(quick);
    if quick {
        println!("[quick mode: reduced workloads — shapes hold, absolute numbers shrink]");
    }
    if let Some(app) = single_app {
        run_app(&mut h, app, aggregate, prefetch);
    }
    for w in wanted.clone() {
        run_one(&mut h, &w, plan, &ckpt_intervals);
    }
    if let Some(path) = trace_out {
        let json = h.chrome_trace(App::Ocean, 8, LocalityMode::Locality, TraceBackend::Ipsc);
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote Chrome trace ({} bytes) to {path}", json.len()),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `repro --app NAME [--aggregate] [--prefetch]`: one application's
/// communication profile on the simulated iPSC/860, across the processor
/// sweep.
fn run_app(h: &mut Harness, app: App, aggregate: bool, prefetch: bool) {
    let mode = if app.has_placement() {
        LocalityMode::TaskPlacement
    } else {
        LocalityMode::Locality
    };
    println!(
        "{} on the simulated iPSC/860 (aggregation {}, prefetch {}):",
        app.name(),
        if aggregate { "ON" } else { "off" },
        if prefetch { "ON" } else { "off" }
    );
    for procs in [1usize, 2, 4, 8, 16] {
        let r = h.ipsc_with(app, procs, mode, |c| {
            c.aggregate_fetches = aggregate;
            c.prefetch = prefetch;
        });
        print!(
            "  x{procs:<2}: {:.2}s | {} tasks | requests {} replies {} \
             (bundles {} carrying {} objects) | {} object bytes",
            r.exec_time_s,
            r.tasks_executed,
            r.requests,
            r.fetch_messages,
            r.agg_fetches,
            r.agg_objects,
            r.comm_bytes
        );
        if prefetch {
            print!(
                " | prefetches {} ({} hit, {} stale), overlap {:.0}%",
                r.prefetches_issued,
                r.prefetch_hits,
                r.prefetch_stale,
                r.overlap_frac * 100.0
            );
        }
        println!();
    }
}

fn run_one(h: &mut Harness, what: &str, plan: dsim::FaultPlan, ckpt_intervals: &[f64]) {
    let exec_apps = [App::Water, App::StringApp, App::Ocean, App::Cholesky];
    match what {
        "all" => {
            for t in [
                "table1",
                "table6",
                "tables",
                "figures",
                "replication",
                "bcast-analysis",
                "latency-hiding",
                "concurrent-fetch",
                "ablations",
                "heterogeneous",
            ] {
                run_one(h, t, plan, ckpt_intervals);
            }
        }
        "tables" => {
            for t in 2..=5 {
                run_one(h, &format!("table{t}"), plan, ckpt_intervals);
            }
            for t in 7..=14 {
                run_one(h, &format!("table{t}"), plan, ckpt_intervals);
            }
        }
        "figures" => {
            for f in 2..=21 {
                if f != 1 {
                    run_one(h, &format!("fig{f}"), plan, ckpt_intervals);
                }
            }
        }
        "table1" => ex::table_serial(h, true),
        "table6" => ex::table_serial(h, false),
        "table2" => ex::table_exec(h, App::Water, true),
        "table3" => ex::table_exec(h, App::StringApp, true),
        "table4" => ex::table_exec(h, App::Ocean, true),
        "table5" => ex::table_exec(h, App::Cholesky, true),
        "table7" => ex::table_exec(h, App::Water, false),
        "table8" => ex::table_exec(h, App::StringApp, false),
        "table9" => ex::table_exec(h, App::Ocean, false),
        "table10" => ex::table_exec(h, App::Cholesky, false),
        "table11" => ex::table_bcast(h, App::Water),
        "table12" => ex::table_bcast(h, App::StringApp),
        "table13" => ex::table_bcast(h, App::Ocean),
        "table14" => ex::table_bcast(h, App::Cholesky),
        "fig2" => ex::fig_locality(h, App::Water, true),
        "fig3" => ex::fig_locality(h, App::StringApp, true),
        "fig4" => ex::fig_locality(h, App::Ocean, true),
        "fig5" => ex::fig_locality(h, App::Cholesky, true),
        "fig6" => ex::fig_taskexec(h, App::Water),
        "fig7" => ex::fig_taskexec(h, App::StringApp),
        "fig8" => ex::fig_taskexec(h, App::Ocean),
        "fig9" => ex::fig_taskexec(h, App::Cholesky),
        "fig10" => ex::fig_mgmt(h, App::Ocean, true),
        "fig11" => ex::fig_mgmt(h, App::Cholesky, true),
        "fig12" => ex::fig_locality(h, App::Water, false),
        "fig13" => ex::fig_locality(h, App::StringApp, false),
        "fig14" => ex::fig_locality(h, App::Ocean, false),
        "fig15" => ex::fig_locality(h, App::Cholesky, false),
        "fig16" => ex::fig_commratio(h, App::Water),
        "fig17" => ex::fig_commratio(h, App::StringApp),
        "fig18" => ex::fig_commratio(h, App::Ocean),
        "fig19" => ex::fig_commratio(h, App::Cholesky),
        "fig20" => ex::fig_mgmt(h, App::Ocean, false),
        "fig21" => ex::fig_mgmt(h, App::Cholesky, false),
        "replication" => ex::replication(h),
        "bcast-analysis" => ex::bcast_analysis(h),
        "latency-hiding" => ex::latency_hiding(h),
        "concurrent-fetch" => ex::concurrent_fetch(h),
        "ablations" => ex::ablations(h),
        "heterogeneous" => ex::heterogeneous(h),
        "utilization" => {
            for app in [App::Water, App::Ocean, App::Cholesky] {
                ex::utilization(h, app, 8);
            }
        }
        "bench" => {
            if let Err(why) = jade_bench::bench::run(h.quick) {
                eprintln!("bench FAILED: {why}");
                std::process::exit(1);
            }
        }
        "fault-sweep" => {
            if let Err(why) = ex::fault_sweep(h, plan) {
                eprintln!("fault sweep FAILED: {why}");
                std::process::exit(1);
            }
        }
        "checkpoint-sweep" => {
            if let Err(why) = ex::checkpoint_sweep(h, plan, ckpt_intervals) {
                eprintln!("checkpoint sweep FAILED: {why}");
                std::process::exit(1);
            }
        }
        "aggregation-sweep" => {
            if let Err(why) = ex::aggregation_sweep(h) {
                eprintln!("aggregation sweep FAILED: {why}");
                std::process::exit(1);
            }
        }
        "overlap-sweep" => {
            if let Err(why) = ex::overlap_sweep(h) {
                eprintln!("overlap sweep FAILED: {why}");
                std::process::exit(1);
            }
        }
        "service-stress" => {
            if let Err(why) = ex::service_stress(h) {
                eprintln!("service stress FAILED: {why}");
                std::process::exit(1);
            }
        }
        "tune-sweep" => {
            if let Err(why) = ex::tune_sweep(h) {
                eprintln!("tune sweep FAILED: {why}");
                std::process::exit(1);
            }
        }
        other => {
            let _ = exec_apps;
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}
