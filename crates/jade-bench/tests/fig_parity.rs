//! Acceptance check for the event layer: the task-management percentages of
//! Figures 10/11 (DASH) and 20/21 (iPSC/860) — `100 * work-free time / full
//! time` — must be reproducible from the structured event streams alone,
//! bit-for-bit equal to what the run results report.

use dsim::SimDuration;
use jade_bench::{App, Harness};
use jade_core::{LocalityMode, Metrics};
use jade_dash::DashConfig;
use jade_ipsc::IpscConfig;

fn pct(full: f64, free: f64) -> f64 {
    100.0 * free / full
}

fn exec_s(m: &Metrics) -> f64 {
    SimDuration(m.makespan_ps).as_secs_f64()
}

#[test]
fn fig_mgmt_percentages_reconstruct_from_events() {
    let mut h = Harness::new(true);
    let mode = LocalityMode::TaskPlacement;
    for procs in [2usize, 8] {
        for app in [App::Ocean, App::Cholesky] {
            let trace = h.trace(app, procs);

            // Figures 10/11: DASH.
            let spo = app.dash_sec_per_op(&trace);
            let full_cfg = DashConfig::paper(procs, mode, spo);
            let mut free_cfg = full_cfg.clone();
            free_cfg.work_free = true;
            let (rf, ef) = jade_dash::run_traced(&trace, &full_cfg);
            let (rw, ew) = jade_dash::run_traced(&trace, &free_cfg);
            let from_run = pct(rf.exec_time_s, rw.exec_time_s);
            let from_events = pct(
                exec_s(&Metrics::from_events(&ef, procs)),
                exec_s(&Metrics::from_events(&ew, procs)),
            );
            assert_eq!(from_events, from_run, "DASH {app:?} {procs}p");
            assert!(from_events > 0.0 && from_events <= 100.0);

            // Figures 20/21: iPSC/860.
            let spo = app.ipsc_sec_per_op(&trace);
            let full_cfg = IpscConfig::paper(procs, mode, spo);
            let mut free_cfg = full_cfg.clone();
            free_cfg.work_free = true;
            let (rf, ef) = jade_ipsc::run_traced(&trace, &full_cfg);
            let (rw, ew) = jade_ipsc::run_traced(&trace, &free_cfg);
            let from_run = pct(rf.exec_time_s, rw.exec_time_s);
            let from_events = pct(
                exec_s(&Metrics::from_events(&ef, procs)),
                exec_s(&Metrics::from_events(&ew, procs)),
            );
            assert_eq!(from_events, from_run, "iPSC {app:?} {procs}p");
            assert!(from_events > 0.0 && from_events <= 100.0);
        }
    }
}
