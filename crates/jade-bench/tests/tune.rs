//! Property battery for the self-tuning feedback controller
//! (DESIGN.md §19): over random task DAGs, fault plans, and both
//! execution backends, a controller-on run must
//!
//! 1. replay **bit-identically** for a given seed (event stream and
//!    decision log alike),
//! 2. compute exactly what the controller-off run computes (knobs steer
//!    performance, never results), and
//! 3. keep every recorded knob value inside its documented range.

use dsim::FaultPlan;
use jade_core::{AccessSpec, JadeRuntime, LocalityMode, TaskBuilder, TraceBuilder};
use jade_ipsc::IpscConfig;
use jade_threads::{DequeImpl, SchedMode, ThreadRuntime};
use proptest::prelude::*;

/// Build a random multi-phase trace: every task writes one object (so
/// width statistics accumulate and `final_versions` moves) and reads a
/// random subset of the others; phase breaks drop in at random points.
fn random_trace(procs: usize, sizes: &[usize], tasks: &[(u8, u8, u8, bool)]) -> jade_core::Trace {
    let mut b = TraceBuilder::new();
    let objs: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| b.object(&format!("o{i}"), s, Some(i % procs)))
        .collect();
    for &(wr, rd_mask, work, brk) in tasks {
        let target = objs[wr as usize % objs.len()];
        let mut spec = AccessSpec::new();
        spec.wr(target);
        for (i, &o) in objs.iter().enumerate() {
            if o != target && rd_mask & (1 << (i % 8)) != 0 {
                spec.rd(o);
            }
        }
        b.task(spec, 0.001 + work as f64 * 1e-4);
        if brk {
            b.next_phase();
        }
    }
    b.build()
}

/// Decode a valid random fault plan: light message loss, an optional
/// mid-run fail-stop of a non-main processor, an optional checkpoint
/// chain. Values stay far inside `FaultPlan::validate` bounds.
fn random_plan(
    procs: usize,
    drop_milli: u64,
    fail: Option<(u8, u16)>,
    ckpt_milli: Option<u16>,
    seed: u64,
) -> FaultPlan {
    FaultPlan {
        drop_p: drop_milli as f64 / 1000.0,
        fail_proc: fail.map(|(p, _)| 1 + p as usize % (procs - 1)),
        fail_at: dsim::SimDuration::from_secs_f64(
            fail.map_or(0.0, |(_, at)| 0.001 + at as f64 * 1e-4),
        ),
        checkpoint: ckpt_milli.map(|k| dsim::SimDuration::from_secs_f64(0.001 + k as f64 * 1e-4)),
        seed,
        ..FaultPlan::none()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// iPSC backend: controller-on runs are bit-identical per seed, agree
    /// with controller-off on every result, and keep knobs in range —
    /// across random DAGs × random fault plans.
    #[test]
    fn ipsc_tuned_runs_are_deterministic_and_result_preserving(
        procs in 2usize..6,
        sizes in prop::collection::vec(64usize..5000, 2..7),
        tasks in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()), 3..40),
        drop_milli in 0u64..30,
        fail in (any::<bool>(), any::<u8>(), any::<u16>()),
        ckpt in (any::<bool>(), any::<u16>()),
        seed in any::<u64>(),
    ) {
        let trace = random_trace(procs, &sizes, &tasks);
        let plan = random_plan(
            procs,
            drop_milli,
            if fail.0 { Some((fail.1, fail.2)) } else { None },
            if ckpt.0 { Some(ckpt.1) } else { None },
            seed,
        );
        let mut cfg = IpscConfig::paper(procs, LocalityMode::Locality, 1.0);
        cfg.faults = plan;
        let off = jade_ipsc::try_run(&trace, &cfg).expect("untuned run");
        prop_assert!(off.tune.decisions.is_empty(),
            "controller-off run must not log decisions");
        cfg.tune = true;
        let (t1, e1) = jade_ipsc::try_run_traced(&trace, &cfg).expect("tuned run");
        let (t2, e2) = jade_ipsc::try_run_traced(&trace, &cfg).expect("tuned repeat");
        prop_assert_eq!(&e1, &e2, "tuned event streams diverged across repeats");
        prop_assert_eq!(&t1.tune, &t2.tune, "tuned decision logs diverged");
        prop_assert!(!t1.tune.decisions.is_empty(),
            "every write retires width evidence; the log cannot be empty");
        t1.tune.check_ranges().expect("knob out of documented range");
        prop_assert_eq!(&t1.final_versions, &off.final_versions,
            "tuning changed computed results");
        prop_assert_eq!(t1.tasks_executed, off.tasks_executed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Thread backend: tuned runs produce the same store contents and task
    /// counts as untuned, the decision logs repeat bit-for-bit across runs
    /// (they derive from batch shapes, not OS scheduling), and knobs stay
    /// in range — across random batch splits × schedulers × deques.
    #[test]
    fn threads_tuned_runs_match_untuned_and_log_identically(
        workers in 1usize..5,
        nhandles in 1usize..5,
        tasks in prop::collection::vec((any::<u8>(), 1u64..100), 1..60),
        split in any::<u8>(),
        ckpt_every in 1usize..16,
        global in any::<bool>(),
        chase_lev in any::<bool>(),
    ) {
        let run = |tune: bool| {
            let mode = if global { SchedMode::GlobalLock } else { SchedMode::Sharded };
            let mut rt = ThreadRuntime::with_mode(workers, mode);
            rt.set_deque_impl(if chase_lev { DequeImpl::ChaseLev } else { DequeImpl::Locked });
            rt.checkpoint_every(ckpt_every);
            if tune {
                rt.enable_tuning();
            }
            let handles: Vec<_> = (0..nhandles)
                .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
                .collect();
            let cut = split as usize % tasks.len();
            for (i, &(h, inc)) in tasks.iter().enumerate() {
                let h = handles[h as usize % handles.len()];
                rt.submit(TaskBuilder::new("inc").rd_wr(h).body(move |ctx| {
                    let mut g = ctx.wr(h);
                    *g = g.wrapping_add(inc);
                }));
                if i + 1 == cut {
                    rt.finish(); // random batch split: two DAG shapes per case
                }
            }
            rt.finish();
            let finals: Vec<u64> = handles.iter().map(|&h| *rt.store().read(h)).collect();
            let executed = rt.total_stats().executed;
            let log = rt.tune_log().cloned();
            (finals, executed, log)
        };
        let (f_off, x_off, l_off) = run(false);
        let (f_a, x_a, l_a) = run(true);
        let (f_b, x_b, l_b) = run(true);
        prop_assert!(l_off.is_none(), "untuned runtime must not log decisions");
        prop_assert_eq!(&f_a, &f_off, "tuning changed store contents");
        prop_assert_eq!(&f_b, &f_off);
        prop_assert_eq!(x_a, x_off);
        prop_assert_eq!(x_b, x_off);
        let (l_a, l_b) = (l_a.expect("tuned log"), l_b.expect("tuned log"));
        prop_assert_eq!(&l_a, &l_b, "tuned decision logs diverged across runs");
        prop_assert!(!l_a.decisions.is_empty());
        l_a.check_ranges().expect("knob out of documented range");
    }
}
