//! Criterion benches, one group per table/figure family of the paper:
//! each measures the time for *this implementation* to regenerate the
//! experiment's data points (at reduced workload scale, so `cargo bench`
//! completes quickly). The absolute virtual-time results themselves are
//! produced by the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use jade_bench::{App, Harness};
use jade_core::LocalityMode;

fn bench_exec_table(c: &mut Criterion, name: &str, app: App, dash: bool) {
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut h = Harness::new(true);
            let mut acc = 0.0;
            for procs in [1usize, 4, 16] {
                for mode in h.modes_for(app) {
                    acc += if dash {
                        h.dash(app, procs, mode).exec_time_s
                    } else {
                        h.ipsc(app, procs, mode).exec_time_s
                    };
                }
            }
            std::hint::black_box(acc)
        })
    });
}

fn tables_dash(c: &mut Criterion) {
    bench_exec_table(c, "table2_water_dash", App::Water, true);
    bench_exec_table(c, "table3_string_dash", App::StringApp, true);
    bench_exec_table(c, "table4_ocean_dash", App::Ocean, true);
    bench_exec_table(c, "table5_cholesky_dash", App::Cholesky, true);
}

fn tables_ipsc(c: &mut Criterion) {
    bench_exec_table(c, "table7_water_ipsc", App::Water, false);
    bench_exec_table(c, "table8_string_ipsc", App::StringApp, false);
    bench_exec_table(c, "table9_ocean_ipsc", App::Ocean, false);
    bench_exec_table(c, "table10_cholesky_ipsc", App::Cholesky, false);
}

fn tables_broadcast(c: &mut Criterion) {
    for (name, app) in [
        ("table11_water_bcast", App::Water),
        ("table12_string_bcast", App::StringApp),
        ("table13_ocean_bcast", App::Ocean),
        ("table14_cholesky_bcast", App::Cholesky),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut h = Harness::new(true);
                let mode = if app.has_placement() {
                    LocalityMode::TaskPlacement
                } else {
                    LocalityMode::Locality
                };
                let on = h.ipsc_with(app, 8, mode, |c| c.adaptive_broadcast = true);
                let off = h.ipsc_with(app, 8, mode, |c| c.adaptive_broadcast = false);
                std::hint::black_box(on.exec_time_s + off.exec_time_s)
            })
        });
    }
}

fn figures_locality(c: &mut Criterion) {
    for (name, app, dash) in [
        ("fig2_5_locality_dash", App::Ocean, true),
        ("fig12_15_locality_ipsc", App::Cholesky, false),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut h = Harness::new(true);
                let mut acc = 0.0;
                for procs in [2usize, 8] {
                    for mode in h.modes_for(app) {
                        acc += if dash {
                            h.dash(app, procs, mode).locality_pct
                        } else {
                            h.ipsc(app, procs, mode).locality_pct
                        };
                    }
                }
                std::hint::black_box(acc)
            })
        });
    }
}

fn figures_mgmt_and_comm(c: &mut Criterion) {
    c.bench_function("fig10_11_20_21_mgmt", |b| {
        b.iter(|| {
            let mut h = Harness::new(true);
            let full = h.ipsc(App::Ocean, 8, LocalityMode::TaskPlacement).exec_time_s;
            let free = h
                .ipsc_with(App::Ocean, 8, LocalityMode::TaskPlacement, |c| c.work_free = true)
                .exec_time_s;
            std::hint::black_box(free / full)
        })
    });
    c.bench_function("fig16_19_comm_ratio", |b| {
        b.iter(|| {
            let mut h = Harness::new(true);
            std::hint::black_box(h.ipsc(App::Ocean, 8, LocalityMode::Locality).comm_to_comp)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = tables_dash, tables_ipsc, tables_broadcast, figures_locality, figures_mgmt_and_comm
}
criterion_main!(benches);
