//! Benches, one per table/figure family of the paper: each measures the
//! time for *this implementation* to regenerate the experiment's data
//! points (at reduced workload scale, so `cargo bench` completes quickly).
//! The absolute virtual-time results themselves are produced by the
//! `repro` binary.
//!
//! Plain self-timing harness (`harness = false`); run with
//! `cargo bench -p jade-bench --bench tables`.

use jade_bench::{App, Harness};
use jade_core::LocalityMode;

fn bench(name: &str, mut f: impl FnMut() -> f64) {
    let iters = 5u32;
    std::hint::black_box(f());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:>28}  {:>12.3} ms/iter  ({iters} iters)", per * 1e3);
}

fn bench_exec_table(name: &str, app: App, dash: bool) {
    bench(name, || {
        let mut h = Harness::new(true);
        let mut acc = 0.0;
        for procs in [1usize, 4, 16] {
            for mode in h.modes_for(app) {
                acc += if dash {
                    h.dash(app, procs, mode).exec_time_s
                } else {
                    h.ipsc(app, procs, mode).exec_time_s
                };
            }
        }
        acc
    });
}

fn tables_dash() {
    bench_exec_table("table2_water_dash", App::Water, true);
    bench_exec_table("table3_string_dash", App::StringApp, true);
    bench_exec_table("table4_ocean_dash", App::Ocean, true);
    bench_exec_table("table5_cholesky_dash", App::Cholesky, true);
}

fn tables_ipsc() {
    bench_exec_table("table7_water_ipsc", App::Water, false);
    bench_exec_table("table8_string_ipsc", App::StringApp, false);
    bench_exec_table("table9_ocean_ipsc", App::Ocean, false);
    bench_exec_table("table10_cholesky_ipsc", App::Cholesky, false);
}

fn tables_broadcast() {
    for (name, app) in [
        ("table11_water_bcast", App::Water),
        ("table12_string_bcast", App::StringApp),
        ("table13_ocean_bcast", App::Ocean),
        ("table14_cholesky_bcast", App::Cholesky),
    ] {
        bench(name, || {
            let mut h = Harness::new(true);
            let mode = if app.has_placement() {
                LocalityMode::TaskPlacement
            } else {
                LocalityMode::Locality
            };
            let on = h.ipsc_with(app, 8, mode, |c| c.adaptive_broadcast = true);
            let off = h.ipsc_with(app, 8, mode, |c| c.adaptive_broadcast = false);
            on.exec_time_s + off.exec_time_s
        });
    }
}

fn figures_locality() {
    for (name, app, dash) in [
        ("fig2_5_locality_dash", App::Ocean, true),
        ("fig12_15_locality_ipsc", App::Cholesky, false),
    ] {
        bench(name, || {
            let mut h = Harness::new(true);
            let mut acc = 0.0;
            for procs in [2usize, 8] {
                for mode in h.modes_for(app) {
                    acc += if dash {
                        h.dash(app, procs, mode).locality_pct
                    } else {
                        h.ipsc(app, procs, mode).locality_pct
                    };
                }
            }
            acc
        });
    }
}

fn figures_mgmt_and_comm() {
    bench("fig10_11_20_21_mgmt", || {
        let mut h = Harness::new(true);
        let full = h
            .ipsc(App::Ocean, 8, LocalityMode::TaskPlacement)
            .exec_time_s;
        let free = h
            .ipsc_with(App::Ocean, 8, LocalityMode::TaskPlacement, |c| {
                c.work_free = true
            })
            .exec_time_s;
        free / full
    });
    bench("fig16_19_comm_ratio", || {
        let mut h = Harness::new(true);
        h.ipsc(App::Ocean, 8, LocalityMode::Locality).comm_to_comp
    });
}

fn main() {
    tables_dash();
    tables_ipsc();
    tables_broadcast();
    figures_locality();
    figures_mgmt_and_comm();
}
