//! Micro-benchmarks of the runtime components themselves: synchronizer
//! throughput, simulator event rates, trace generation, and the real
//! thread backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jade_core::{AccessSpec, JadeRuntime, ObjectId, Synchronizer, TaskBuilder, TaskId, TraceBuilder};
use jade_core::LocalityMode;
use jade_threads::ThreadRuntime;

fn synchronizer_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("synchronizer");
    for &n in &[1_000usize, 10_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("pipeline", n), &n, |b, &n| {
            // Worst case: a single write chain (every completion re-grants).
            b.iter(|| {
                let mut sync = Synchronizer::new(true);
                let mut spec = AccessSpec::new();
                spec.wr(ObjectId(0));
                let mut ready = Vec::new();
                for i in 0..n {
                    if sync.add_task(TaskId(i as u32), &spec) {
                        ready.push(TaskId(i as u32));
                    }
                }
                let mut done = 0;
                while let Some(t) = ready.pop() {
                    done += 1;
                    sync.complete(t, &mut ready);
                }
                assert_eq!(done, n);
            })
        });
        g.bench_with_input(BenchmarkId::new("independent", n), &n, |b, &n| {
            b.iter(|| {
                let mut sync = Synchronizer::new(true);
                let mut ready = Vec::with_capacity(n);
                for i in 0..n {
                    let mut spec = AccessSpec::new();
                    spec.wr(ObjectId(i as u32));
                    if sync.add_task(TaskId(i as u32), &spec) {
                        ready.push(TaskId(i as u32));
                    }
                }
                let mut newly = Vec::new();
                for t in ready {
                    sync.complete(t, &mut newly);
                }
                assert!(sync.all_complete());
            })
        });
    }
    g.finish();
}

fn simulator_event_rate(c: &mut Criterion) {
    // A fixed synthetic trace: fan-out tasks with moderate sharing.
    let mut b = TraceBuilder::new();
    let objs: Vec<_> = (0..64).map(|i| b.object(&format!("o{i}"), 1024, Some(i % 8))).collect();
    for i in 0..2_000usize {
        let mut s = AccessSpec::new();
        s.wr(objs[i % 64]);
        s.rd(objs[(i * 7 + 1) % 64]);
        b.task(s, 0.001);
    }
    let trace = b.build();
    let mut g = c.benchmark_group("simulators");
    g.throughput(Throughput::Elements(trace.task_count() as u64));
    g.bench_function("dash_2k_tasks", |bch| {
        bch.iter(|| {
            jade_dash::run(&trace, &jade_dash::DashConfig::paper(8, LocalityMode::Locality, 1.0))
        })
    });
    g.bench_function("ipsc_2k_tasks", |bch| {
        bch.iter(|| {
            jade_ipsc::run(&trace, &jade_ipsc::IpscConfig::paper(8, LocalityMode::Locality, 1.0))
        })
    });
    g.finish();
}

fn trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.bench_function("water_small", |b| {
        b.iter(|| jade_apps::water::run_trace(&jade_apps::water::WaterConfig::small(8)))
    });
    g.bench_function("cholesky_small", |b| {
        b.iter(|| jade_apps::cholesky::run_trace(&jade_apps::cholesky::CholeskyConfig::small(8)))
    });
    g.finish();
}

fn thread_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("thread_backend");
    for &n in &[500usize] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("independent_tasks", n), &n, |b, &n| {
            b.iter(|| {
                let mut rt = ThreadRuntime::new(4);
                let objs: Vec<_> = (0..n).map(|i| rt.create(&format!("o{i}"), 8, 0u64)).collect();
                for (i, &o) in objs.iter().enumerate() {
                    rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                        *ctx.wr(o) = i as u64;
                    }));
                }
                rt.finish();
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = synchronizer_throughput, simulator_event_rate, trace_generation, thread_backend
}
criterion_main!(benches);
