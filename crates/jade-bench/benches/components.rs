//! Micro-benchmarks of the runtime components themselves: synchronizer
//! throughput, simulator event rates, trace generation, and the real
//! thread backend.
//!
//! Plain self-timing harness (`harness = false`): each benchmark runs a
//! fixed number of iterations and reports the mean wall-clock time per
//! iteration. Run with `cargo bench -p jade-bench --bench components`.

use jade_core::LocalityMode;
use jade_core::{
    AccessSpec, JadeRuntime, ObjectId, Synchronizer, TaskBuilder, TaskId, TraceBuilder,
};
use jade_threads::ThreadRuntime;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    // One warm-up iteration, then the timed batch.
    f();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:>32}  {:>12.3} µs/iter  ({iters} iters)", per * 1e6);
}

fn synchronizer_throughput() {
    for &n in &[1_000usize, 10_000] {
        bench(&format!("synchronizer/pipeline/{n}"), 10, || {
            // Worst case: a single write chain (every completion re-grants).
            let mut sync = Synchronizer::new(true);
            let mut spec = AccessSpec::new();
            spec.wr(ObjectId(0));
            let mut ready = Vec::new();
            for i in 0..n {
                if sync.add_task(TaskId(i as u32), &spec) {
                    ready.push(TaskId(i as u32));
                }
            }
            let mut done = 0;
            while let Some(t) = ready.pop() {
                done += 1;
                sync.complete(t, &mut ready);
            }
            assert_eq!(done, n);
        });
        bench(&format!("synchronizer/independent/{n}"), 10, || {
            let mut sync = Synchronizer::new(true);
            let mut ready = Vec::with_capacity(n);
            for i in 0..n {
                let mut spec = AccessSpec::new();
                spec.wr(ObjectId(i as u32));
                if sync.add_task(TaskId(i as u32), &spec) {
                    ready.push(TaskId(i as u32));
                }
            }
            let mut newly = Vec::new();
            for t in ready {
                sync.complete(t, &mut newly);
            }
            assert!(sync.all_complete());
        });
    }
}

fn simulator_event_rate() {
    // A fixed synthetic trace: fan-out tasks with moderate sharing.
    let mut b = TraceBuilder::new();
    let objs: Vec<_> = (0..64)
        .map(|i| b.object(&format!("o{i}"), 1024, Some(i % 8)))
        .collect();
    for i in 0..2_000usize {
        let mut s = AccessSpec::new();
        s.wr(objs[i % 64]);
        s.rd(objs[(i * 7 + 1) % 64]);
        b.task(s, 0.001);
    }
    let trace = b.build();
    bench("simulators/dash_2k_tasks", 10, || {
        std::hint::black_box(jade_dash::run(
            &trace,
            &jade_dash::DashConfig::paper(8, LocalityMode::Locality, 1.0),
        ));
    });
    bench("simulators/ipsc_2k_tasks", 10, || {
        std::hint::black_box(jade_ipsc::run(
            &trace,
            &jade_ipsc::IpscConfig::paper(8, LocalityMode::Locality, 1.0),
        ));
    });
}

fn trace_generation() {
    bench("trace_generation/water_small", 10, || {
        std::hint::black_box(jade_apps::water::run_trace(
            &jade_apps::water::WaterConfig::small(8),
        ));
    });
    bench("trace_generation/cholesky_small", 10, || {
        std::hint::black_box(jade_apps::cholesky::run_trace(
            &jade_apps::cholesky::CholeskyConfig::small(8),
        ));
    });
}

fn thread_backend() {
    let n = 500usize;
    bench(&format!("thread_backend/independent_tasks/{n}"), 10, || {
        let mut rt = ThreadRuntime::new(4);
        let objs: Vec<_> = (0..n)
            .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
            .collect();
        for (i, &o) in objs.iter().enumerate() {
            rt.submit(TaskBuilder::new("w").wr(o).body(move |ctx| {
                *ctx.wr(o) = i as u64;
            }));
        }
        rt.finish();
    });
}

fn main() {
    synchronizer_throughput();
    simulator_event_rate();
    trace_generation();
    thread_backend();
}
