//! # jade — an implicitly parallel task runtime driven by data access information
//!
//! A from-scratch Rust reproduction of *"Communication Optimizations for
//! Parallel Computing Using Data Access Information"* (Rinard, SC'95), the
//! Jade language paper. This façade crate re-exports the whole workspace:
//!
//! * [`core`] — the programming model: shared objects, access
//!   specifications, the `withonly` task construct, the queue-based
//!   synchronizer, serial execution + trace recording;
//! * [`threads`] — a real parallel executor on OS threads, plus the
//!   multi-tenant [`JadeService`] front end (admission control,
//!   deadlines, tenant fault isolation; DESIGN.md §16);
//! * [`dash`] — the simulated shared-memory machine (Stanford
//!   DASH) with the locality-heuristic scheduler;
//! * [`ipsc`] — the simulated message-passing machine (Intel
//!   iPSC/860) with replication, concurrent fetches, adaptive broadcast and
//!   latency hiding;
//! * [`apps`] — the paper's applications: Water, String, Ocean,
//!   Panel Cholesky;
//! * [`dsim`] — the discrete-event simulation substrate.
//!
//! See README.md for a tour and DESIGN.md / EXPERIMENTS.md for the
//! reproduction methodology.

pub use dsim;
pub use jade_apps as apps;
pub use jade_core as core;
pub use jade_dash as dash;
pub use jade_ipsc as ipsc;
pub use jade_threads as threads;

pub use jade_core::{
    AccessMode, AccessSpec, Handle, JadeRuntime, LocalityMode, ObjectId, Store, Synchronizer,
    TaskBuilder, TaskCtx, TaskDef, TaskId, TenantId, Trace, TraceRuntime,
};
pub use jade_threads::{
    BatchPolicy, DequeImpl, JadeService, Outcome, Program, SchedMode, ServiceConfig, ShedPolicy,
    SubmitError, TenantOptions, TenantReport, ThreadRuntime,
};
