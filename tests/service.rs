//! Multi-tenant service integration: tenant fault isolation, backpressure,
//! and post-panic runtime reuse.
//!
//! The isolation invariant (DESIGN.md §16): a clean tenant's observable
//! results — final object values and the interleaving-independent slice of
//! its per-tenant metrics — must be *bit-identical* whether it runs alone
//! or concurrently with hostile neighbors (injected-crash tenants,
//! fail-stop tenants, zero-deadline tenants, and tenants whose task bodies
//! genuinely panic). Faults and cancellations may never leak across the
//! tenant boundary.

use jade::core::Metrics;
use jade::threads::FaultPlan;
use jade::{
    DequeImpl, JadeRuntime, JadeService, Outcome, Program, ServiceConfig, SubmitError, TaskBuilder,
    TenantOptions, ThreadRuntime,
};
use proptest::prelude::*;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

const OBJECTS: usize = 4;
const WORKERS: usize = 4;

/// Silence the default panic hook for the *deliberate* panics these tests
/// inject ("hostile bug"); everything else still prints. Injected-fault
/// crashes use `resume_unwind` and never reach the hook at all.
fn quiet_expected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info.payload().downcast_ref::<&str>().copied().unwrap_or("");
            if !msg.contains("hostile bug") {
                default(info);
            }
        }));
    });
}

/// A random program: for each task, a set of (object, is_write) accesses.
fn program_strategy(max_tasks: usize) -> impl Strategy<Value = Vec<Vec<(u8, bool)>>> {
    prop::collection::vec(
        prop::collection::vec(((0..OBJECTS as u8), any::<bool>()), 0..5),
        1..max_tasks,
    )
}

/// Materialize a random program as a service `Program` (each task appends
/// its index to every object it writes).
fn build_program(prog: &[Vec<(u8, bool)>]) -> (Program, Vec<jade::Handle<Vec<u32>>>) {
    let mut p = Program::new();
    let objs: Vec<_> = (0..OBJECTS)
        .map(|i| p.create(format!("o{i}"), 8, Vec::<u32>::new()))
        .collect();
    for (i, accesses) in prog.iter().enumerate() {
        let mut tb = TaskBuilder::new("p");
        let mut writes = Vec::new();
        let mut seen = [false; OBJECTS];
        for &(o, w) in accesses {
            let o = o as usize % OBJECTS;
            if seen[o] {
                continue;
            }
            seen[o] = true;
            if w {
                tb = tb.rd_wr(objs[o]);
                writes.push(objs[o]);
            } else {
                tb = tb.rd(objs[o]);
            }
        }
        p.submit(tb.body(move |ctx| {
            for &h in &writes {
                ctx.wr(h).push(i as u32);
            }
        }));
    }
    (p, objs)
}

/// A program whose second task has a genuine bug.
fn buggy_program() -> Program {
    let mut p = Program::new();
    let h = p.create("x", 8, 0u64);
    p.submit(TaskBuilder::new("ok").rd_wr(h).body(move |ctx| {
        *ctx.wr(h) += 1;
    }));
    p.submit(TaskBuilder::new("bug").rd_wr(h).body(move |_ctx| {
        panic!("hostile bug");
    }));
    p
}

/// The interleaving-independent slice of a tenant's metrics.
fn counters(m: &Metrics) -> (usize, usize, usize, usize, usize, u64, u64, u64) {
    (
        m.tasks_created,
        m.tasks_enabled,
        m.tasks_dispatched,
        m.tasks_started,
        m.tasks_completed,
        m.releases,
        m.workers_failed,
        m.tasks_reexecuted,
    )
}

type Observation = (
    Vec<Vec<u32>>,
    (usize, usize, usize, usize, usize, u64, u64, u64),
);

/// Run the same random program directly on a standalone [`ThreadRuntime`]
/// (no service front end) with the given deque implementation, returning
/// the final per-object write logs.
fn run_on_thread_runtime(prog: &[Vec<(u8, bool)>], deque: DequeImpl) -> Vec<Vec<u32>> {
    let mut rt = ThreadRuntime::new(WORKERS);
    rt.set_deque_impl(deque);
    let objs: Vec<_> = (0..OBJECTS)
        .map(|i| rt.create(&format!("o{i}"), 8, Vec::<u32>::new()))
        .collect();
    for (i, accesses) in prog.iter().enumerate() {
        let mut tb = TaskBuilder::new("p");
        let mut writes = Vec::new();
        let mut seen = [false; OBJECTS];
        for &(o, w) in accesses {
            let o = o as usize % OBJECTS;
            if seen[o] {
                continue;
            }
            seen[o] = true;
            if w {
                tb = tb.rd_wr(objs[o]);
                writes.push(objs[o]);
            } else {
                tb = tb.rd(objs[o]);
            }
        }
        rt.submit(tb.body(move |ctx| {
            for &h in &writes {
                ctx.wr(h).push(i as u32);
            }
        }));
    }
    rt.finish();
    objs.iter().map(|&h| rt.store().read(h).clone()).collect()
}

/// Run `clean` as the only tenant of a fresh service and observe it.
fn observe_solo(clean: &[Vec<(u8, bool)>]) -> Observation {
    let svc = JadeService::new(ServiceConfig::new(WORKERS));
    let (p, objs) = build_program(clean);
    let id = svc.submit(p, TenantOptions::default()).expect("admit");
    let r = svc.wait(id);
    assert_eq!(r.outcome, Outcome::Completed, "solo run must complete");
    let outs = objs.iter().map(|&h| r.store.read(h).clone()).collect();
    (outs, counters(&r.metrics(WORKERS)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: clean tenants are bit-identical solo vs
    /// concurrent with crashing, fail-stop, zero-deadline and genuinely
    /// buggy tenants sharing the pool.
    #[test]
    fn clean_tenants_are_isolated_from_hostile_neighbors(
        clean in program_strategy(25),
        hostile in program_strategy(20),
        seed in any::<u64>(),
    ) {
        quiet_expected_panics();
        let solo = observe_solo(&clean);

        let svc = JadeService::new(ServiceConfig::new(WORKERS));
        let mut hostile_ids = Vec::new();
        let (pf, _) = build_program(&hostile);
        hostile_ids.push(svc.submit(pf, TenantOptions::default().with_faults(FaultPlan {
            panic_p: 0.4,
            seed,
            ..FaultPlan::none()
        })).unwrap());
        let (pc, objs) = build_program(&clean);
        let clean_id = svc.submit(pc, TenantOptions::default()).unwrap();
        let (pd, _) = build_program(&hostile);
        hostile_ids.push(svc.submit(pd, TenantOptions::default()
            .with_deadline(Duration::ZERO)).unwrap());
        let (ps, _) = build_program(&hostile);
        hostile_ids.push(svc.submit(ps, TenantOptions::default().with_faults(FaultPlan {
            fail_proc: Some(1),
            seed,
            ..FaultPlan::none()
        })).unwrap());
        hostile_ids.push(svc.submit(buggy_program(), TenantOptions::default()).unwrap());

        let r = svc.wait(clean_id);
        prop_assert_eq!(&r.outcome, &Outcome::Completed, "clean tenant must complete");
        let outs: Vec<Vec<u32>> = objs.iter().map(|&h| r.store.read(h).clone()).collect();
        let concurrent = (outs, counters(&r.metrics(WORKERS)));
        // Drain the neighbors so shutdown is clean (their outcomes are
        // theirs; the buggy one must have failed, not taken the pool down).
        let mut saw_failure = false;
        for id in hostile_ids {
            let hr = svc.wait(id);
            saw_failure |= matches!(hr.outcome, Outcome::Failed(_));
        }
        prop_assert!(saw_failure, "the buggy neighbor must fail in isolation");
        prop_assert_eq!(&solo, &concurrent, "clean tenant diverged next to hostile neighbors");
    }

    /// Injected crashes are themselves deterministic: a faulty tenant
    /// completes bit-identically to its own clean twin, solo or not.
    #[test]
    fn faulty_tenants_recover_bit_identically(
        prog in program_strategy(20),
        seed in any::<u64>(),
    ) {
        let solo = observe_solo(&prog);
        let svc = JadeService::new(ServiceConfig::new(WORKERS));
        let (p, objs) = build_program(&prog);
        let id = svc.submit(p, TenantOptions::default().with_faults(FaultPlan {
            panic_p: 0.3,
            seed,
            ..FaultPlan::none()
        })).unwrap();
        let r = svc.wait(id);
        prop_assert_eq!(&r.outcome, &Outcome::Completed);
        let outs: Vec<Vec<u32>> = objs.iter().map(|&h| r.store.read(h).clone()).collect();
        prop_assert_eq!(&solo.0, &outs, "recovered outputs diverged from the clean twin");
        // Recoveries inflate dispatch/start counts but never completions.
        let m = r.metrics(WORKERS);
        prop_assert_eq!(m.tasks_completed, prog.len());
        prop_assert_eq!(m.tasks_started, m.tasks_completed + m.tasks_reexecuted as usize);
    }

    /// The service front end and a standalone `ThreadRuntime` agree on
    /// final object state — for both work-stealing deque implementations.
    /// (The service pool has its own dispatch loop; this pins the whole
    /// stack to one observable semantics regardless of the deque choice.)
    #[test]
    fn service_agrees_with_solo_thread_runtime_for_both_deques(
        prog in program_strategy(25),
    ) {
        let (svc_outs, _) = observe_solo(&prog);
        for deque in [DequeImpl::Locked, DequeImpl::ChaseLev] {
            let rt_outs = run_on_thread_runtime(&prog, deque);
            prop_assert_eq!(
                &svc_outs,
                &rt_outs,
                "service and ThreadRuntime({}) diverged",
                deque.name()
            );
        }
    }
}

#[test]
fn overload_surfaces_as_submit_error() {
    // One active slot, no pending queue, one worker held hostage by a
    // gated task: the second submission must be *rejected*, not queued,
    // blocked, or panicked.
    let mut cfg = ServiceConfig::new(1);
    cfg.max_active = 1;
    cfg.max_pending = 0;
    let svc = JadeService::new(cfg);

    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let g = Arc::clone(&gate);
    let mut pa = Program::new();
    let ha = pa.create("a", 8, 0u64);
    pa.submit(TaskBuilder::new("hold").rd_wr(ha).body(move |ctx| {
        let (m, cv) = &*g;
        let mut open = m.lock().unwrap();
        while !*open {
            open = cv.wait(open).unwrap();
        }
        *ctx.wr(ha) = 1;
    }));
    let a = svc
        .submit(pa, TenantOptions::default())
        .expect("first DAG admitted");

    let (pb, _) = build_program(&[vec![(0, true)]]);
    match svc.submit(pb, TenantOptions::default()) {
        Err(SubmitError::Overloaded { pending, limit }) => {
            assert_eq!((pending, limit), (0, 0));
        }
        Ok(id) => panic!("overloaded service admitted tenant {id}"),
        Err(e) => panic!("want Overloaded, got {e}"),
    }

    {
        let (m, cv) = &*gate;
        *m.lock().unwrap() = true;
        cv.notify_all();
    }
    let ra = svc.wait(a);
    assert_eq!(ra.outcome, Outcome::Completed);
    assert_eq!(*ra.store.read(ha), 1);

    // Once the slot frees, the same shape of DAG is admitted normally.
    let (pb, objs) = build_program(&[vec![(0, true)]]);
    let b = svc
        .submit(pb, TenantOptions::default())
        .expect("admitted after drain");
    let rb = svc.wait(b);
    assert_eq!(rb.outcome, Outcome::Completed);
    assert_eq!(rb.store.read(objs[0]).as_slice(), &[0]);
}

#[test]
fn thread_runtime_survives_a_caught_mid_batch_panic() {
    quiet_expected_panics();
    for deque in [DequeImpl::Locked, DequeImpl::ChaseLev] {
        survives_mid_batch_panic(deque);
    }
}

fn survives_mid_batch_panic(deque: DequeImpl) {
    let mut rt = ThreadRuntime::new(3);
    rt.set_deque_impl(deque);
    let a = rt.create("a", 8, 0u64);
    for i in 0..5u64 {
        rt.submit(TaskBuilder::new("ok").rd_wr(a).body(move |ctx| {
            *ctx.wr(a) += i + 1;
        }));
    }
    rt.submit(TaskBuilder::new("bug").rd_wr(a).body(move |_ctx| {
        panic!("hostile bug");
    }));
    for _ in 0..5 {
        rt.submit(TaskBuilder::new("more").rd_wr(a).body(move |ctx| {
            *ctx.wr(a) += 100;
        }));
    }
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.finish()));
    assert!(caught.is_err(), "the bug must propagate out of finish()");

    // The aborted batch left the runtime coherent: a fresh batch on the
    // *same* runtime runs to completion with the right answer and stats.
    let b = rt.create("b", 8, 0u64);
    let n = 20u64;
    for i in 0..n {
        rt.submit(TaskBuilder::new("clean").rd_wr(b).body(move |ctx| {
            let mut v = ctx.wr(b);
            *v = v.wrapping_mul(31).wrapping_add(i + 1);
        }));
    }
    rt.finish();
    let mut want = 0u64;
    for i in 0..n {
        want = want.wrapping_mul(31).wrapping_add(i + 1);
    }
    assert_eq!(*rt.store().read(b), want);
    let s = rt.last_stats();
    assert_eq!(s.executed, n as usize, "clean batch stats are coherent");
    assert_eq!(s.recoveries, 0);
}
