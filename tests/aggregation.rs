//! Lifecycle, conservation and break-even coverage for the
//! inspector/executor fetch-aggregation pass (DESIGN.md §15).
//!
//! Coalescing is a *message-count* optimization: every object delivered
//! inside a bundle still emits its own `ObjectFetch` event carrying its own
//! payload bytes, so per-object byte attribution must sum to the metrics
//! total exactly, the event stream must stay well-formed, and the §5.3
//! break-even must keep the pass from firing on a machine where messages
//! cost nothing (where bundling could only add header bytes).

use jade::apps::pagerank::{self, PagerankConfig};
use jade::core::{check_conservation, check_lifecycle, EventKind, Metrics, ObjectId};
use jade::ipsc::{self, IpscConfig};
use jade::LocalityMode;
use std::collections::BTreeMap;

fn paper_cfg(procs: usize, aggregate: bool) -> IpscConfig {
    let mut cfg = IpscConfig::paper(procs, LocalityMode::TaskPlacement, 1e-6);
    cfg.aggregate_fetches = aggregate;
    cfg
}

fn pagerank_trace(procs: usize) -> jade::Trace {
    pagerank::run_trace(&PagerankConfig::small(procs)).0
}

/// Per-object byte attribution under coalescing: summing the `ObjectFetch`
/// payloads per object reproduces `Metrics::comm_bytes` exactly — the
/// bundle header never leaks into the object accounting — and the
/// aggregation counters tie the bundles to the objects they carried.
#[test]
fn coalesced_bytes_attribute_to_objects() {
    let procs = 8;
    let trace = pagerank_trace(procs);
    let (r, events) = ipsc::run_traced(&trace, &paper_cfg(procs, true));
    assert!(
        r.agg_fetches > 0,
        "expected bundles on PageRank at paper costs"
    );

    let mut per_object: BTreeMap<ObjectId, u64> = BTreeMap::new();
    let mut bundle_objects = 0u64;
    let mut bundle_bytes = 0u64;
    for e in &events {
        match e.kind {
            EventKind::ObjectFetch { bytes, .. } => {
                *per_object
                    .entry(e.object.expect("fetch names its object"))
                    .or_insert(0) += bytes;
            }
            EventKind::AggregatedFetch { objects, bytes } => {
                assert!(objects >= 2, "a bundle delivers at least two objects");
                assert!(bytes > 0);
                bundle_objects += objects as u64;
                bundle_bytes += bytes;
            }
            _ => {}
        }
    }
    let m = Metrics::from_events(&events, procs);
    let attributed: u64 = per_object.values().sum();
    assert_eq!(
        attributed,
        m.comm_bytes(),
        "per-object attribution must be exact"
    );
    assert_eq!(m.comm_bytes(), r.comm_bytes);
    assert_eq!(m.agg_fetches, r.agg_fetches);
    assert_eq!(m.agg_objects, r.agg_objects);
    assert_eq!(bundle_objects, r.agg_objects);
    assert_eq!(m.agg_bytes, bundle_bytes);
    assert!(
        bundle_bytes <= attributed,
        "bundled payloads are a subset of all fetched payloads"
    );
    assert_eq!(m.fetch_messages(), r.fetch_messages);
    assert_eq!(r.fetch_messages, r.fetches - r.agg_objects + r.agg_fetches);

    check_lifecycle(&events).expect("lifecycle holds with AggregatedFetch present");
    check_conservation(&events, procs, m.makespan_ps)
        .expect("spans tile the makespan with AggregatedFetch present");
}

/// Coalescing must not change what the application computed, only how many
/// messages carried it.
#[test]
fn aggregation_preserves_results_and_reduces_messages() {
    let procs = 8;
    let trace = pagerank_trace(procs);
    let off = ipsc::run(&trace, &paper_cfg(procs, false));
    let on = ipsc::run(&trace, &paper_cfg(procs, true));
    assert_eq!(on.final_versions, off.final_versions);
    assert_eq!(on.tasks_executed, off.tasks_executed);
    assert_eq!(off.agg_fetches, 0, "pass off emits no bundles");
    assert!(on.agg_fetches > 0);
    assert!(
        on.requests + on.fetch_messages < off.requests + off.fetch_messages,
        "bundling must reduce physical messages"
    );
}

/// §5.3 break-even regression: on a machine with zero per-message fixed
/// cost there is nothing to save, so the inspector must never coalesce —
/// firing anyway would pay `2k` header entries for no benefit. The run
/// must be indistinguishable from the pass being off.
#[test]
fn break_even_suppresses_aggregation_on_zero_overhead_machine() {
    let procs = 8;
    let trace = pagerank_trace(procs);
    let zero = |aggregate: bool| {
        let mut cfg = paper_cfg(procs, aggregate);
        cfg.machine.message_latency_s = 0.0;
        cfg.machine.per_hop_s = 0.0;
        cfg.costs.request_send_s = 0.0;
        cfg.costs.object_recv_s = 0.0;
        cfg
    };
    let on = ipsc::run(&trace, &zero(true));
    assert_eq!(
        on.agg_fetches, 0,
        "break-even must not fire when the savings are zero"
    );
    assert_eq!(on.agg_objects, 0);

    // With no bundles formed, the toggle is entirely invisible.
    let off = ipsc::run(&trace, &zero(false));
    assert_eq!(on.final_versions, off.final_versions);
    assert_eq!(on.exec_time_s, off.exec_time_s);
    assert_eq!(on.requests, off.requests);
    assert_eq!(on.fetches, off.fetches);
    assert_eq!(on.comm_bytes, off.comm_bytes);
}

/// The break-even fires on the paper machine for every bundle size ≥ 2:
/// 47 µs of message latency dwarfs the per-entry header cost, so the
/// boundary sits below k = 2 there — and a cheap-message machine pushes it
/// back above any practical k.
#[test]
fn break_even_boundary_follows_the_cost_model() {
    let procs = 4;
    let trace = pagerank_trace(procs);
    // Paper machine: bundles form.
    let paper = ipsc::run(&trace, &paper_cfg(procs, true));
    assert!(paper.agg_fetches > 0);

    // Message latency shrunk 1000x: per-message fixed cost ~94 ns against
    // a 2x16-byte header at 2.8 MB/s (~11 us) — below break-even, so the
    // same program must form no bundles.
    let mut cheap = paper_cfg(procs, true);
    cheap.machine.message_latency_s /= 1000.0;
    cheap.machine.per_hop_s = 0.0;
    cheap.costs.request_send_s = 0.0;
    cheap.costs.object_recv_s = 0.0;
    let r = ipsc::run(&trace, &cheap);
    assert_eq!(r.agg_fetches, 0, "cheap messages must not be coalesced");
    assert_eq!(
        r.final_versions, paper.final_versions,
        "results unchanged either way"
    );
}
