//! Cross-crate integration tests: every application trace runs to
//! completion on both simulated machines at every locality level, and the
//! runs satisfy the invariants the paper's evaluation relies on.

use jade::apps::{cholesky, ocean, string_app, water};
use jade::dash::{self, DashConfig};
use jade::ipsc::{self, IpscConfig};
use jade::{LocalityMode, Trace};

fn traces(procs: usize) -> Vec<(&'static str, Trace, bool)> {
    vec![
        (
            "water",
            water::run_trace(&water::WaterConfig::small(procs)).0,
            false,
        ),
        (
            "string",
            string_app::run_trace(&string_app::StringConfig::small(procs)).0,
            false,
        ),
        (
            "ocean",
            ocean::run_trace(&ocean::OceanConfig::small(procs)).0,
            true,
        ),
        (
            "cholesky",
            cholesky::run_trace(&cholesky::CholeskyConfig::small(procs)).0,
            true,
        ),
    ]
}

#[test]
fn every_app_runs_on_dash_at_every_level() {
    for procs in [1usize, 3, 8] {
        for (name, trace, placed) in traces(procs) {
            for mode in LocalityMode::ALL {
                if mode == LocalityMode::TaskPlacement && !placed {
                    continue;
                }
                let r = dash::run(&trace, &DashConfig::paper(procs, mode, 1e-6));
                assert_eq!(
                    r.tasks_executed,
                    trace.task_count(),
                    "{name} procs={procs} {mode}: every task must execute"
                );
                assert!(r.exec_time_s > 0.0);
                assert!(
                    r.exec_time_s >= r.task_time_s / procs as f64 * 0.99,
                    "{name}: makespan can't beat perfect speedup"
                );
                assert!((0.0..=100.0).contains(&r.locality_pct));
            }
        }
    }
}

#[test]
fn every_app_runs_on_ipsc_at_every_level() {
    for procs in [1usize, 3, 8] {
        for (name, trace, placed) in traces(procs) {
            for mode in LocalityMode::ALL {
                if mode == LocalityMode::TaskPlacement && !placed {
                    continue;
                }
                let r = ipsc::run(&trace, &IpscConfig::paper(procs, mode, 1e-6));
                assert_eq!(
                    r.tasks_executed,
                    trace.task_count(),
                    "{name} procs={procs} {mode}"
                );
                assert!(r.exec_time_s > 0.0);
                assert!((0.0..=100.0).contains(&r.locality_pct));
                if procs == 1 {
                    assert_eq!(r.fetches, 0, "{name}: no fetches on one processor");
                }
            }
        }
    }
}

#[test]
fn dash_placement_gives_full_locality() {
    let trace = ocean::run_trace(&ocean::OceanConfig::small(5)).0;
    let r = dash::run(
        &trace,
        &DashConfig::paper(5, LocalityMode::TaskPlacement, 1e-6),
    );
    assert_eq!(r.locality_pct, 100.0);
    assert_eq!(r.steals, 0);
}

#[test]
fn more_processors_do_not_lose_tasks() {
    // More processors than tasks: degenerate but must complete.
    let trace = water::run_trace(&water::WaterConfig {
        molecules: 32,
        iterations: 1,
        procs: 2,
        seed: 3,
    })
    .0;
    for procs in [4usize, 16, 32] {
        let d = dash::run(
            &trace,
            &DashConfig::paper(procs, LocalityMode::Locality, 1e-6),
        );
        assert_eq!(d.tasks_executed, trace.task_count());
        let i = ipsc::run(
            &trace,
            &IpscConfig::paper(procs, LocalityMode::Locality, 1e-6),
        );
        assert_eq!(i.tasks_executed, trace.task_count());
    }
}

#[test]
fn work_free_runs_complete_and_are_faster() {
    let trace = cholesky::run_trace(&cholesky::CholeskyConfig::small(4)).0;
    let full = IpscConfig::paper(4, LocalityMode::TaskPlacement, 1e-5);
    let mut free = full.clone();
    free.work_free = true;
    let rf = ipsc::run(&trace, &full);
    let rw = ipsc::run(&trace, &free);
    assert!(rw.exec_time_s < rf.exec_time_s);
    assert_eq!(rw.tasks_executed, rf.tasks_executed);
}

#[test]
fn simulators_are_deterministic_across_runs() {
    let trace = ocean::run_trace(&ocean::OceanConfig::small(4)).0;
    let d1 = dash::run(&trace, &DashConfig::paper(4, LocalityMode::Locality, 1e-6));
    let d2 = dash::run(&trace, &DashConfig::paper(4, LocalityMode::Locality, 1e-6));
    assert_eq!(d1.exec_time_s, d2.exec_time_s);
    assert_eq!(d1.steals, d2.steals);
    let i1 = ipsc::run(&trace, &IpscConfig::paper(4, LocalityMode::Locality, 1e-6));
    let i2 = ipsc::run(&trace, &IpscConfig::paper(4, LocalityMode::Locality, 1e-6));
    assert_eq!(i1.exec_time_s, i2.exec_time_s);
    assert_eq!(i1.comm_bytes, i2.comm_bytes);
}

#[test]
fn replication_off_serializes_on_both_machines() {
    // Section 5.1: all applications have an object read by every task in
    // the important parallel phases; without replication they serialize.
    let trace = water::run_trace(&water::WaterConfig::small(6)).0;
    let spo = 1e-4;
    let d_on = DashConfig::paper(6, LocalityMode::Locality, spo);
    let mut d_off = d_on.clone();
    d_off.replication = false;
    let don = dash::run(&trace, &d_on);
    let doff = dash::run(&trace, &d_off);
    assert!(doff.exec_time_s > 1.5 * don.exec_time_s);
    let mut i_off = IpscConfig::paper(6, LocalityMode::Locality, spo);
    i_off.replication = false;
    let ion = ipsc::run(&trace, &IpscConfig::paper(6, LocalityMode::Locality, spo));
    let ioff = ipsc::run(&trace, &i_off);
    assert!(ioff.exec_time_s > 1.5 * ion.exec_time_s);
}

#[test]
fn broadcast_volume_accounted() {
    // Water's position object becomes broadcast after the first phases.
    let trace = water::run_trace(&water::WaterConfig::small(8)).0;
    let r = ipsc::run(&trace, &IpscConfig::paper(8, LocalityMode::Locality, 1e-6));
    assert!(
        r.broadcasts > 0,
        "adaptive broadcast should engage for Water"
    );
    let mut off = IpscConfig::paper(8, LocalityMode::Locality, 1e-6);
    off.adaptive_broadcast = false;
    let r2 = ipsc::run(&trace, &off);
    assert_eq!(r2.broadcasts, 0);
}
