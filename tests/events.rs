//! Conformance tests for the unified event layer: for random task DAGs the
//! event streams of both machine simulators must be sound (complete
//! lifecycles, byte-accurate communication, timelines that tile exactly to
//! the makespan), and every backend must produce byte-identical streams for
//! identical inputs.

use dsim::SimDuration;
use jade::core::{
    check_conservation, check_lifecycle, AccessSpec, Event, Metrics, TaskBuilder, Trace,
    TraceBuilder,
};
use jade::dash::{self, DashConfig};
use jade::ipsc::{self, IpscConfig};
use jade::{JadeRuntime, LocalityMode, ThreadRuntime};
use proptest::prelude::*;

/// A random program: for each task, a set of (object, is_write) accesses.
fn program_strategy(
    max_tasks: usize,
    max_objects: usize,
) -> impl Strategy<Value = Vec<Vec<(u8, bool)>>> {
    prop::collection::vec(
        prop::collection::vec(((0..max_objects as u8), any::<bool>()), 0..5),
        1..max_tasks,
    )
}

fn build_trace(prog: &[Vec<(u8, bool)>], procs: usize) -> Trace {
    let mut b = TraceBuilder::new();
    let objs: Vec<_> = (0..5)
        .map(|i| b.object(&format!("o{i}"), 256, Some(i % procs)))
        .collect();
    for accesses in prog {
        let mut s = AccessSpec::new();
        for &(o, w) in accesses {
            if w {
                s.wr(objs[(o % 5) as usize]);
            } else {
                s.rd(objs[(o % 5) as usize]);
            }
        }
        b.task(s, 0.01);
    }
    b.build()
}

/// Check one stream against its run: full lifecycles, exact conservation,
/// and per-processor breakdowns equal to the clock-derived busy triples.
fn assert_stream_sound(
    events: &[Event],
    procs: usize,
    exec_time_s: f64,
    per_proc_busy: &[(f64, f64, f64)],
) -> Metrics {
    prop_assert_eq!(check_lifecycle(events).err(), None);
    let m = Metrics::from_events(events, procs);
    prop_assert_eq!(check_conservation(events, procs, m.makespan_ps).err(), None);
    prop_assert_eq!(SimDuration(m.makespan_ps).as_secs_f64(), exec_time_s);
    for (p, busy) in per_proc_busy.iter().enumerate() {
        let pt = &m.per_proc[p];
        prop_assert_eq!(
            SimDuration(pt.app_ps).as_secs_f64(),
            busy.0,
            "app on proc {}",
            p
        );
        prop_assert_eq!(
            SimDuration(pt.comm_ps).as_secs_f64(),
            busy.1,
            "comm on proc {}",
            p
        );
        prop_assert_eq!(
            SimDuration(pt.mgmt_ps).as_secs_f64(),
            busy.2,
            "mgmt on proc {}",
            p
        );
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any random program on any processor count, both simulators emit
    /// event streams with a complete per-task lifecycle chain, fetch bytes
    /// equal to the simulator's own communication volume, and per-processor
    /// spans that tile exactly to the simulated makespan.
    #[test]
    fn event_streams_are_sound_on_both_simulators(
        prog in program_strategy(30, 5),
        procs in 1usize..9,
    ) {
        let trace = build_trace(&prog, procs);
        let (d, ev) =
            dash::run_traced(&trace, &DashConfig::paper(procs, LocalityMode::Locality, 1.0));
        let m = assert_stream_sound(&ev, procs, d.exec_time_s, &d.per_proc_busy);
        prop_assert_eq!(m.tasks_started, d.tasks_executed);
        prop_assert_eq!(m.fetch_bytes, d.bytes_moved, "DASH bytes moved");

        let (i, ev) =
            ipsc::run_traced(&trace, &IpscConfig::paper(procs, LocalityMode::Locality, 1.0));
        let m = assert_stream_sound(&ev, procs, i.exec_time_s, &i.per_proc_busy);
        prop_assert_eq!(m.tasks_started, i.tasks_executed);
        prop_assert_eq!(m.comm_bytes(), i.comm_bytes, "iPSC comm volume");
        prop_assert_eq!(m.fetches, i.fetches);
    }
}

/// A fixed mixed workload: a serial init phase, then parallel tasks with
/// cross-object reads that force real communication.
fn mixed_trace(procs: usize) -> Trace {
    let mut b = TraceBuilder::new();
    let hot = b.object("hot", 50_000, Some(0));
    let outs: Vec<_> = (0..procs)
        .map(|i| b.object(&format!("o{i}"), 64, Some(i)))
        .collect();
    let mut init = AccessSpec::new();
    init.wr(hot);
    b.task_full(init, 0.01, None, true);
    b.next_phase();
    for _ in 0..3 {
        for &o in &outs {
            let mut s = AccessSpec::new();
            s.wr(o).rd(hot);
            b.task(s, 0.2);
        }
    }
    b.build()
}

#[test]
fn dash_event_stream_is_deterministic() {
    let trace = mixed_trace(4);
    let cfg = DashConfig::paper(4, LocalityMode::Locality, 1.0);
    let (_, ev1) = dash::run_traced(&trace, &cfg);
    let (_, ev2) = dash::run_traced(&trace, &cfg);
    assert_eq!(
        ev1, ev2,
        "DASH must emit identical streams for identical runs"
    );
}

#[test]
fn ipsc_event_stream_is_deterministic() {
    let trace = mixed_trace(4);
    let cfg = IpscConfig::paper(4, LocalityMode::Locality, 1.0);
    let (_, ev1) = ipsc::run_traced(&trace, &cfg);
    let (_, ev2) = ipsc::run_traced(&trace, &cfg);
    assert_eq!(
        ev1, ev2,
        "iPSC must emit identical streams for identical runs"
    );
}

/// One thread-backend run of a fixed program with events on; returns the
/// stream and the batch stats.
fn threads_run_once() -> (Vec<Event>, jade::threads::BatchStats) {
    let mut rt = ThreadRuntime::new(1);
    rt.enable_events();
    let objs: Vec<_> = (0..3)
        .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
        .collect();
    for i in 0..30 {
        let o = objs[i % 3];
        rt.submit(TaskBuilder::new("t").rd_wr(o).body(move |ctx| {
            *ctx.wr(o) += 1;
        }));
    }
    rt.finish();
    (rt.take_events(), rt.last_stats())
}

#[test]
fn thread_backend_events_are_deterministic_and_match_stats() {
    let (ev1, stats1) = threads_run_once();
    let (ev2, stats2) = threads_run_once();
    // One worker leaves no scheduling freedom: streams must be identical.
    assert_eq!(
        ev1, ev2,
        "serial thread backend must emit identical streams"
    );
    assert_eq!(stats1, stats2);
    check_lifecycle(&ev1).unwrap();
    let m = Metrics::from_events(&ev1, 1);
    assert_eq!(m.tasks_started, stats1.executed);
    assert_eq!(m.steals as usize, stats1.steals);
    assert_eq!(m.locality_hits, stats1.locality_hits);
}
