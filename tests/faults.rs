//! Property tests for the fault-injection layer: any random program under
//! any fault plan inside the supported envelope (drop ≤ 0.2, dup ≤ 0.1,
//! delays/reorders, an optional fail-stop of a non-main processor,
//! transient stalls, injected worker crashes) must complete on both machine
//! simulators and on the thread backend with application results
//! bit-identical to the fault-free run, a well-formed event stream, and
//! native fault counters that match the event-derived metrics exactly.

use jade::core::{check_conservation, check_lifecycle, AccessSpec, Metrics, Trace, TraceBuilder};
use jade::dash::{self, DashConfig};
use jade::dsim::{FaultPlan, SimDuration};
use jade::ipsc::{self, IpscConfig};
use jade::{JadeRuntime, LocalityMode, TaskBuilder, ThreadRuntime};
use proptest::prelude::*;

/// A random program: for each task, a set of (object, is_write) accesses.
fn program_strategy(
    max_tasks: usize,
    max_objects: usize,
) -> impl Strategy<Value = Vec<Vec<(u8, bool)>>> {
    prop::collection::vec(
        prop::collection::vec(((0..max_objects as u8), any::<bool>()), 0..5),
        1..max_tasks,
    )
}

/// Materialize a random program as a trace with objects big enough that the
/// iPSC simulator sends real messages (and so exercises the fault paths).
fn build_trace(prog: &[Vec<(u8, bool)>], procs: usize) -> Trace {
    let mut b = TraceBuilder::new();
    let objs: Vec<_> = (0..5)
        .map(|i| b.object(&format!("o{i}"), 50_000, Some(i % procs)))
        .collect();
    for accesses in prog {
        let mut s = AccessSpec::new();
        for &(o, w) in accesses {
            if w {
                s.wr(objs[(o % 5) as usize]);
            } else {
                s.rd(objs[(o % 5) as usize]);
            }
        }
        b.task(s, 0.005);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The iPSC simulator under a random lossy plan (optionally with a
    /// fail-stop) completes every program, computes the same final object
    /// versions as the fault-free run, executes each task exactly once plus
    /// re-executions, and keeps its event stream well-formed with counters
    /// matching the native tallies.
    #[test]
    fn ipsc_survives_any_fault_plan(
        prog in program_strategy(20, 5),
        procs in 2usize..9,
        drop in 0u32..21,
        dup in 0u32..11,
        delay in 0u32..26,
        fail in any::<bool>(),
        fail_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let trace = build_trace(&prog, procs);
        let base = IpscConfig::paper(procs, LocalityMode::Locality, 1.0);
        let clean = ipsc::try_run(&trace, &base).expect("fault-free run completes");
        let mut plan = FaultPlan {
            drop_p: drop as f64 / 100.0,
            dup_p: dup as f64 / 100.0,
            delay_p: delay as f64 / 100.0,
            delay: SimDuration::from_secs_f64(0.0015),
            reorder_p: delay as f64 / 200.0,
            reorder_window: SimDuration::from_secs_f64(0.003),
            seed,
            ..FaultPlan::none()
        };
        if fail {
            plan.fail_proc = Some(1 + (fail_pick as usize) % (procs - 1));
            plan.fail_at = SimDuration::from_secs_f64(clean.exec_time_s * 0.5);
        }
        let mut cfg = base.clone();
        cfg.faults = plan;
        let (faulty, events) =
            ipsc::try_run_traced(&trace, &cfg).expect("faulty run completes");

        // Results are bit-identical to the fault-free run; re-executions
        // are the only extra work.
        prop_assert_eq!(&faulty.final_versions, &clean.final_versions);
        // `tasks_reexecuted` counts re-dispatches; an orphan that had not
        // yet *started* on the dead processor starts only once, so the
        // started-count is bounded by, not equal to, clean + re-dispatches.
        prop_assert!(faulty.tasks_executed >= clean.tasks_executed);
        prop_assert!(
            faulty.tasks_executed as u64 <= clean.tasks_executed as u64 + faulty.tasks_reexecuted
        );
        if !fail {
            prop_assert_eq!(faulty.workers_failed, 0);
            prop_assert_eq!(faulty.tasks_reexecuted, 0);
        }

        // The event stream stays well-formed and agrees with the native
        // counters exactly.
        check_lifecycle(&events).expect("lifecycle holds under faults");
        let m = Metrics::from_events(&events, procs);
        check_conservation(&events, procs, m.makespan_ps)
            .expect("spans tile the makespan under faults");
        prop_assert_eq!(m.msgs_dropped, faulty.msgs_dropped);
        prop_assert_eq!(m.msgs_retried, faulty.msgs_retried);
        prop_assert_eq!(m.msgs_discarded, faulty.msgs_discarded);
        prop_assert_eq!(m.workers_failed, faulty.workers_failed);
        prop_assert_eq!(m.tasks_reexecuted, faulty.tasks_reexecuted);

        // Same seed, same plan: the faulty run is deterministic.
        let again = ipsc::try_run(&trace, &cfg).expect("repeat run completes");
        prop_assert_eq!(again.exec_time_s, faulty.exec_time_s);
        prop_assert_eq!(again.msgs_dropped, faulty.msgs_dropped);
        prop_assert_eq!(again.msgs_retried, faulty.msgs_retried);
    }

    /// The DASH simulator under random transient stalls completes every
    /// program deterministically with a well-formed event stream.
    #[test]
    fn dash_survives_transient_stalls(
        prog in program_strategy(20, 5),
        procs in 1usize..9,
        stall_pct in 1u32..101,
        stall_us in 1u32..5001,
        seed in any::<u64>(),
    ) {
        let trace = build_trace(&prog, procs);
        let base = DashConfig::paper(procs, LocalityMode::Locality, 1.0);
        let clean = dash::run(&trace, &base);
        let mut cfg = base.clone();
        cfg.faults = FaultPlan {
            stall_p: stall_pct as f64 / 100.0,
            stall: SimDuration::from_secs_f64(stall_us as f64 * 1e-6),
            seed,
            ..FaultPlan::none()
        };
        let (faulty, events) = dash::run_traced(&trace, &cfg);
        prop_assert_eq!(faulty.tasks_executed, trace.task_count());
        prop_assert_eq!(faulty.tasks_executed, clean.tasks_executed);
        check_lifecycle(&events).expect("lifecycle holds under stalls");
        let m = Metrics::from_events(&events, procs);
        check_conservation(&events, procs, m.makespan_ps)
            .expect("spans tile the makespan under stalls");
        prop_assert_eq!(m.stalls, faulty.stalls);
        let again = dash::run(&trace, &cfg);
        prop_assert_eq!(again.exec_time_s, faulty.exec_time_s);
        prop_assert_eq!(again.stalls, faulty.stalls);
    }

    /// The thread backend under injected worker crashes re-executes the
    /// failed tasks and produces per-object write logs identical to the
    /// fault-free run — conflicting writes still land in program order.
    #[test]
    fn threads_recover_with_identical_results(
        prog in program_strategy(20, 4),
        workers in 1usize..5,
        panic_pct in 0u32..41,
        seed in any::<u64>(),
    ) {
        let run = |faults: Option<FaultPlan>| {
            let mut rt = ThreadRuntime::new(workers);
            if let Some(plan) = faults {
                rt.inject_faults(plan);
            }
            let objs: Vec<_> = (0..4)
                .map(|i| rt.create(&format!("o{i}"), 8, Vec::<u32>::new()))
                .collect();
            for (i, accesses) in prog.iter().enumerate() {
                let mut tb = TaskBuilder::new("p");
                let mut writes = Vec::new();
                let mut seen = [false; 4];
                for &(o, w) in accesses {
                    let o = (o % 4) as usize;
                    if seen[o] {
                        continue;
                    }
                    seen[o] = true;
                    if w {
                        tb = tb.rd_wr(objs[o]);
                        writes.push(objs[o]);
                    } else {
                        tb = tb.rd(objs[o]);
                    }
                }
                rt.submit(tb.body(move |ctx| {
                    for &h in &writes {
                        ctx.wr(h).push(i as u32);
                    }
                }));
            }
            rt.finish();
            let stats = rt.last_stats();
            let logs: Vec<Vec<u32>> = objs.iter().map(|&h| rt.store().read(h).clone()).collect();
            (logs, stats)
        };
        let (clean_logs, clean_stats) = run(None);
        let plan = FaultPlan {
            panic_p: panic_pct as f64 / 100.0,
            seed,
            ..FaultPlan::none()
        };
        let (logs, stats) = run(Some(plan));
        prop_assert_eq!(logs, clean_logs, "results must be bit-identical to fault-free");
        prop_assert_eq!(stats.executed, clean_stats.executed + stats.recoveries);
    }
}
