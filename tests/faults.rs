//! Property tests for the fault-injection layer: any random program under
//! any fault plan inside the supported envelope (drop ≤ 0.2, dup ≤ 0.1,
//! delays/reorders, an optional fail-stop of a non-main processor,
//! transient stalls, injected worker crashes) must complete on both machine
//! simulators and on the thread backend with application results
//! bit-identical to the fault-free run, a well-formed event stream, and
//! native fault counters that match the event-derived metrics exactly.
//!
//! The checkpoint/restart layer rides the same harness: any checkpoint
//! interval combined with a fail-stop must leave results bit-identical,
//! the synchronizer snapshot must round-trip through its binary codec on
//! random DAGs, and owner death must reset the adaptive-broadcast trigger
//! so no broadcast ever targets a dead consumer set.

use jade::apps::halo::{self, HaloConfig};
use jade::apps::pagerank::{self, PagerankConfig};
use jade::core::{
    check_conservation, check_lifecycle, AccessSpec, Metrics, ObjectId, SyncSnapshot, Synchronizer,
    TaskId, Trace, TraceBuilder,
};
use jade::dash::{self, DashConfig};
use jade::dsim::{FaultPlan, SimDuration};
use jade::ipsc::{self, IpscConfig};
use jade::{DequeImpl, JadeRuntime, LocalityMode, TaskBuilder, ThreadRuntime};
use proptest::prelude::*;

/// A random program: for each task, a set of (object, is_write) accesses.
fn program_strategy(
    max_tasks: usize,
    max_objects: usize,
) -> impl Strategy<Value = Vec<Vec<(u8, bool)>>> {
    prop::collection::vec(
        prop::collection::vec(((0..max_objects as u8), any::<bool>()), 0..5),
        1..max_tasks,
    )
}

/// Materialize a random program as a trace with objects big enough that the
/// iPSC simulator sends real messages (and so exercises the fault paths).
fn build_trace(prog: &[Vec<(u8, bool)>], procs: usize) -> Trace {
    let mut b = TraceBuilder::new();
    let objs: Vec<_> = (0..5)
        .map(|i| b.object(&format!("o{i}"), 50_000, Some(i % procs)))
        .collect();
    for accesses in prog {
        let mut s = AccessSpec::new();
        for &(o, w) in accesses {
            if w {
                s.wr(objs[(o % 5) as usize]);
            } else {
                s.rd(objs[(o % 5) as usize]);
            }
        }
        b.task(s, 0.005);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The iPSC simulator under a random lossy plan (optionally with a
    /// fail-stop) completes every program, computes the same final object
    /// versions as the fault-free run, executes each task exactly once plus
    /// re-executions, and keeps its event stream well-formed with counters
    /// matching the native tallies.
    #[test]
    fn ipsc_survives_any_fault_plan(
        prog in program_strategy(20, 5),
        procs in 2usize..9,
        drop in 0u32..21,
        dup in 0u32..11,
        delay in 0u32..26,
        fail in any::<bool>(),
        fail_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let trace = build_trace(&prog, procs);
        let base = IpscConfig::paper(procs, LocalityMode::Locality, 1.0);
        let clean = ipsc::try_run(&trace, &base).expect("fault-free run completes");
        let mut plan = FaultPlan {
            drop_p: drop as f64 / 100.0,
            dup_p: dup as f64 / 100.0,
            delay_p: delay as f64 / 100.0,
            delay: SimDuration::from_secs_f64(0.0015),
            reorder_p: delay as f64 / 200.0,
            reorder_window: SimDuration::from_secs_f64(0.003),
            seed,
            ..FaultPlan::none()
        };
        if fail {
            plan.fail_proc = Some(1 + (fail_pick as usize) % (procs - 1));
            plan.fail_at = SimDuration::from_secs_f64(clean.exec_time_s * 0.5);
        }
        let mut cfg = base.clone();
        cfg.faults = plan;
        let (faulty, events) =
            ipsc::try_run_traced(&trace, &cfg).expect("faulty run completes");

        // Results are bit-identical to the fault-free run; re-executions
        // are the only extra work.
        prop_assert_eq!(&faulty.final_versions, &clean.final_versions);
        // `tasks_reexecuted` counts re-dispatches; an orphan that had not
        // yet *started* on the dead processor starts only once, so the
        // started-count is bounded by, not equal to, clean + re-dispatches.
        prop_assert!(faulty.tasks_executed >= clean.tasks_executed);
        prop_assert!(
            faulty.tasks_executed as u64 <= clean.tasks_executed as u64 + faulty.tasks_reexecuted
        );
        if !fail {
            prop_assert_eq!(faulty.workers_failed, 0);
            prop_assert_eq!(faulty.tasks_reexecuted, 0);
        }

        // The event stream stays well-formed and agrees with the native
        // counters exactly.
        check_lifecycle(&events).expect("lifecycle holds under faults");
        let m = Metrics::from_events(&events, procs);
        check_conservation(&events, procs, m.makespan_ps)
            .expect("spans tile the makespan under faults");
        prop_assert_eq!(m.msgs_dropped, faulty.msgs_dropped);
        prop_assert_eq!(m.msgs_retried, faulty.msgs_retried);
        prop_assert_eq!(m.msgs_discarded, faulty.msgs_discarded);
        prop_assert_eq!(m.workers_failed, faulty.workers_failed);
        prop_assert_eq!(m.tasks_reexecuted, faulty.tasks_reexecuted);

        // Same seed, same plan: the faulty run is deterministic.
        let again = ipsc::try_run(&trace, &cfg).expect("repeat run completes");
        prop_assert_eq!(again.exec_time_s, faulty.exec_time_s);
        prop_assert_eq!(again.msgs_dropped, faulty.msgs_dropped);
        prop_assert_eq!(again.msgs_retried, faulty.msgs_retried);
    }

    /// The DASH simulator under random transient stalls completes every
    /// program deterministically with a well-formed event stream.
    #[test]
    fn dash_survives_transient_stalls(
        prog in program_strategy(20, 5),
        procs in 1usize..9,
        stall_pct in 1u32..101,
        stall_us in 1u32..5001,
        seed in any::<u64>(),
    ) {
        let trace = build_trace(&prog, procs);
        let base = DashConfig::paper(procs, LocalityMode::Locality, 1.0);
        let clean = dash::run(&trace, &base);
        let mut cfg = base.clone();
        cfg.faults = FaultPlan {
            stall_p: stall_pct as f64 / 100.0,
            stall: SimDuration::from_secs_f64(stall_us as f64 * 1e-6),
            seed,
            ..FaultPlan::none()
        };
        let (faulty, events) = dash::run_traced(&trace, &cfg);
        prop_assert_eq!(faulty.tasks_executed, trace.task_count());
        prop_assert_eq!(faulty.tasks_executed, clean.tasks_executed);
        check_lifecycle(&events).expect("lifecycle holds under stalls");
        let m = Metrics::from_events(&events, procs);
        check_conservation(&events, procs, m.makespan_ps)
            .expect("spans tile the makespan under stalls");
        prop_assert_eq!(m.stalls, faulty.stalls);
        let again = dash::run(&trace, &cfg);
        prop_assert_eq!(again.exec_time_s, faulty.exec_time_s);
        prop_assert_eq!(again.stalls, faulty.stalls);
    }

    /// The thread backend under injected worker crashes re-executes the
    /// failed tasks and produces per-object write logs identical to the
    /// fault-free run — conflicting writes still land in program order.
    #[test]
    fn threads_recover_with_identical_results(
        prog in program_strategy(20, 4),
        workers in 1usize..5,
        panic_pct in 0u32..41,
        seed in any::<u64>(),
    ) {
        let run = |faults: Option<FaultPlan>, deque: DequeImpl| {
            let mut rt = ThreadRuntime::new(workers);
            rt.set_deque_impl(deque);
            if let Some(plan) = faults {
                rt.inject_faults(plan);
            }
            let objs: Vec<_> = (0..4)
                .map(|i| rt.create(&format!("o{i}"), 8, Vec::<u32>::new()))
                .collect();
            for (i, accesses) in prog.iter().enumerate() {
                let mut tb = TaskBuilder::new("p");
                let mut writes = Vec::new();
                let mut seen = [false; 4];
                for &(o, w) in accesses {
                    let o = (o % 4) as usize;
                    if seen[o] {
                        continue;
                    }
                    seen[o] = true;
                    if w {
                        tb = tb.rd_wr(objs[o]);
                        writes.push(objs[o]);
                    } else {
                        tb = tb.rd(objs[o]);
                    }
                }
                rt.submit(tb.body(move |ctx| {
                    for &h in &writes {
                        ctx.wr(h).push(i as u32);
                    }
                }));
            }
            rt.finish();
            let stats = rt.last_stats();
            let logs: Vec<Vec<u32>> = objs.iter().map(|&h| rt.store().read(h).clone()).collect();
            (logs, stats)
        };
        let (clean_logs, clean_stats) = run(None, DequeImpl::Locked);
        for deque in [DequeImpl::Locked, DequeImpl::ChaseLev] {
            let plan = FaultPlan {
                panic_p: panic_pct as f64 / 100.0,
                seed,
                ..FaultPlan::none()
            };
            let (logs, stats) = run(Some(plan), deque);
            prop_assert_eq!(
                logs,
                clean_logs.clone(),
                "{:?}: results must be bit-identical to fault-free",
                deque
            );
            prop_assert_eq!(stats.executed, clean_stats.executed + stats.recoveries);
        }
    }

    /// Owner death resets the adaptive-broadcast trigger: the object drops
    /// out of broadcast mode, the dead processor leaves the consumer set,
    /// the sole copy re-homes to main at the same version with its restore
    /// attributed, and the new owner must re-earn the full §3.4.2
    /// (drop-rate-adjusted) break-even before broadcasting again.
    #[test]
    fn broadcast_mode_resets_when_owner_dies(
        procs in 3usize..9,
        drop in 0u32..21,
        dead_pick in any::<u64>(),
        extra_rounds in 0usize..3,
    ) {
        let mut b = TraceBuilder::new();
        let o = b.object("x", 50_000, Some(0));
        let mut s = AccessSpec::new();
        s.wr(o);
        b.task(s, 0.001);
        let trace = b.build();

        let dead = 1 + (dead_pick as usize) % (procs - 1);
        let mut comm = ipsc::Communicator::new(&trace, procs, true, drop as f64 / 100.0);
        // Each round every live processor consumes the current version,
        // then `dead` writes the next one. The object must flip into
        // broadcast mode after exactly `evidence_needed()` such rounds.
        let needed = comm.evidence_needed() as usize;
        for round in 1..=needed {
            for p in 0..procs {
                comm.note_access(p, o);
            }
            let bcast = comm.on_write_complete(dead, o);
            prop_assert_eq!(bcast, round == needed, "break-even at round {}", round);
        }
        prop_assert!(comm.in_broadcast_mode(o));
        for _ in 0..extra_rounds {
            for p in 0..procs {
                comm.note_access(p, o);
            }
            prop_assert!(comm.on_write_complete(dead, o), "mode is sticky");
        }

        // `dead` wrote last and nobody fetched since: it holds the sole copy.
        let v = comm.version(o);
        let lost = comm.fail_proc(dead);
        prop_assert_eq!(&lost, &vec![o], "sole copy reported lost");
        prop_assert!(!comm.in_broadcast_mode(o), "owner death exits broadcast mode");
        prop_assert!(!comm.is_alive(dead));
        prop_assert!(
            !comm.consumers(o).contains(&dead),
            "no broadcast to a dead consumer set"
        );
        prop_assert_eq!(comm.owner(o), 0, "sole copy re-homed to main");
        prop_assert_eq!(comm.version(o), v, "restore preserves the version");
        prop_assert!(!comm.needs_fetch(0, o));

        // The restore transfer is attributed to the object.
        comm.record_restore(o, 50_000);
        let tr = comm.object_traffic(o);
        prop_assert_eq!(tr.restore_bytes, 50_000);
        prop_assert!(tr.total() >= tr.restore_bytes, "total() conserves restores");

        // The new owner re-earns the break-even from zero evidence, against
        // the shrunken live set.
        let needed2 = comm.evidence_needed() as usize;
        for round in 1..=needed2 {
            for p in 0..procs {
                if comm.is_alive(p) {
                    comm.note_access(p, o);
                }
            }
            let bcast = comm.on_write_complete(0, o);
            prop_assert_eq!(bcast, round == needed2, "re-earned at round {}", round);
        }
    }

    /// The synchronizer snapshot round-trips through its binary codec on
    /// random DAGs, and a synchronizer rebuilt from the decoded snapshot
    /// behaves identically to the original: the same completions enable the
    /// same successors in the same order, all the way to quiescence.
    #[test]
    fn sync_snapshot_round_trips_on_random_dags(
        prog in program_strategy(25, 5),
        replication in any::<bool>(),
        prefix_pct in 0u32..101,
        pick in any::<u64>(),
    ) {
        let specs: Vec<AccessSpec> = prog
            .iter()
            .map(|accesses| {
                let mut s = AccessSpec::new();
                for &(o, w) in accesses {
                    if w {
                        s.wr(ObjectId((o % 5) as u32));
                    } else {
                        s.rd(ObjectId((o % 5) as u32));
                    }
                }
                s
            })
            .collect();

        let mut sync = Synchronizer::new(replication);
        let mut frontier: Vec<TaskId> = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            if sync.add_task(TaskId(i as u32), s) {
                frontier.push(TaskId(i as u32));
            }
        }

        // Complete a pseudo-random prefix, picking arbitrary enabled tasks.
        let target = specs.len() * prefix_pct as usize / 100;
        let mut done: Vec<TaskId> = Vec::new();
        let mut rng = pick;
        while done.len() < target && !frontier.is_empty() {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = frontier.swap_remove((rng >> 33) as usize % frontier.len());
            sync.complete(t, &mut frontier);
            done.push(t);
        }

        // snapshot → bytes → snapshot is exact, and the accessors agree
        // with the history that produced it.
        let snap = sync.snapshot();
        let bytes = snap.to_bytes();
        prop_assert_eq!(bytes.len(), snap.encoded_len(), "encoded_len is exact");
        let decoded = SyncSnapshot::from_bytes(&bytes).expect("snapshot decodes");
        prop_assert_eq!(&decoded, &snap);
        prop_assert_eq!(decoded.task_count(), specs.len());
        prop_assert_eq!(decoded.live_tasks(), specs.len() - done.len());
        for &t in &done {
            prop_assert!(decoded.completed(t), "completed task is committed");
        }
        for &t in &frontier {
            prop_assert!(!decoded.completed(t), "pending task is not committed");
        }

        // Drain the original and the restored synchronizer side by side
        // with the same deterministic policy; they must enable identical
        // successor sets at every step.
        let mut restored = Synchronizer::from_snapshot(&decoded);
        let mut fa = frontier.clone();
        let mut fb = frontier;
        while !fa.is_empty() {
            fa.sort();
            fb.sort();
            prop_assert_eq!(&fa, &fb, "frontiers diverged");
            let t = fa.remove(0);
            fb.remove(0);
            let (mut na, mut nb) = (Vec::new(), Vec::new());
            sync.complete(t, &mut na);
            restored.complete(t, &mut nb);
            prop_assert_eq!(&na, &nb, "enable order diverged at {:?}", t);
            fa.extend(na);
            fb.extend(nb);
        }
        prop_assert!(sync.all_complete());
        prop_assert!(restored.all_complete());
    }

    /// Any checkpoint interval combined with a mid-run fail-stop leaves the
    /// iPSC results bit-identical to the fault-free run, keeps the event
    /// stream well-formed (every restore after a capture), and reports
    /// checkpoint metrics that match the native tallies exactly and
    /// deterministically.
    #[test]
    fn checkpointed_ipsc_matches_fault_free(
        prog in program_strategy(20, 5),
        procs in 2usize..9,
        ckpt_pct in 5u32..80,
        fail_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let trace = build_trace(&prog, procs);
        let base = IpscConfig::paper(procs, LocalityMode::Locality, 1.0);
        let clean = ipsc::try_run(&trace, &base).expect("fault-free run completes");
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::none()
        };
        plan.fail_proc = Some(1 + (fail_pick as usize) % (procs - 1));
        plan.fail_at = SimDuration::from_secs_f64(clean.exec_time_s * 0.5);
        plan.checkpoint = Some(SimDuration::from_secs_f64(
            (clean.exec_time_s * ckpt_pct as f64 / 100.0).max(1e-6),
        ));
        let mut cfg = base.clone();
        cfg.faults = plan;
        let (ck, events) =
            ipsc::try_run_traced(&trace, &cfg).expect("checkpointed run completes");

        prop_assert_eq!(&ck.final_versions, &clean.final_versions);
        prop_assert!(ck.tasks_executed >= clean.tasks_executed);
        prop_assert!(
            ck.tasks_executed as u64 <= clean.tasks_executed as u64 + ck.tasks_reexecuted
        );
        // An interval shorter than the fail time guarantees at least one
        // capture before the failure (the pre-failure prefix replays the
        // fault-free schedule, so the run is still live at the tick).
        if ckpt_pct <= 45 {
            prop_assert!(ck.checkpoints >= 1, "expected a capture before the failure");
        }
        prop_assert!(ck.checkpoint_restores <= ck.objects_restored);

        check_lifecycle(&events).expect("lifecycle holds with checkpoints");
        let m = Metrics::from_events(&events, procs);
        check_conservation(&events, procs, m.makespan_ps)
            .expect("spans tile the makespan with checkpoints");
        prop_assert_eq!(m.checkpoints, ck.checkpoints);
        prop_assert_eq!(m.checkpoint_bytes, ck.checkpoint_bytes);
        prop_assert_eq!(m.checkpoint_restores, ck.checkpoint_restores);
        prop_assert_eq!(m.object_restores, ck.objects_restored);
        prop_assert_eq!(m.restore_bytes, ck.restore_bytes);
        prop_assert_eq!(m.workers_failed, ck.workers_failed);
        prop_assert_eq!(m.tasks_reexecuted, ck.tasks_reexecuted);

        // Same plan, same interval: the checkpointed run is deterministic.
        let again = ipsc::try_run(&trace, &cfg).expect("repeat run completes");
        prop_assert_eq!(again.exec_time_s, ck.exec_time_s);
        prop_assert_eq!(again.checkpoints, ck.checkpoints);
        prop_assert_eq!(again.checkpoint_bytes, ck.checkpoint_bytes);
        prop_assert_eq!(again.restore_bytes, ck.restore_bytes);
    }

    /// The irregular applications — data-dependent access sets over a
    /// random graph / random tile mask — survive random fault plans with
    /// the fetch-aggregation pass ON: a lost bundle degrades to per-object
    /// retries, a fail-stop (with or without checkpoints) re-homes and
    /// re-executes, and the results stay bit-identical to the fault-free
    /// run both with and without aggregation.
    #[test]
    fn irregular_apps_survive_faults_with_aggregation(
        pick_halo in any::<bool>(),
        procs in 2usize..7,
        drop in 0u32..16,
        dup in 0u32..9,
        fail in any::<bool>(),
        ckpt in any::<bool>(),
        fail_pick in any::<u64>(),
        app_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let trace = if pick_halo {
            let cfg = HaloConfig { seed: app_seed, ..HaloConfig::small(procs) };
            halo::run_trace(&cfg).0
        } else {
            let cfg = PagerankConfig { seed: app_seed, ..PagerankConfig::small(procs) };
            pagerank::run_trace(&cfg).0
        };
        let base = IpscConfig::paper(procs, LocalityMode::TaskPlacement, 1e-6);
        let mut agg = base.clone();
        agg.aggregate_fetches = true;
        let clean_off = ipsc::try_run(&trace, &base).expect("fault-free run completes");
        let clean = ipsc::try_run(&trace, &agg).expect("fault-free aggregated run completes");
        prop_assert_eq!(
            &clean.final_versions, &clean_off.final_versions,
            "aggregation alone changed the results"
        );

        let mut plan = FaultPlan {
            drop_p: drop as f64 / 100.0,
            dup_p: dup as f64 / 100.0,
            seed,
            ..FaultPlan::none()
        };
        if fail {
            plan.fail_proc = Some(1 + (fail_pick as usize) % (procs - 1));
            plan.fail_at = SimDuration::from_secs_f64(clean.exec_time_s * 0.5);
        }
        if ckpt {
            plan.checkpoint = Some(SimDuration::from_secs_f64(
                (clean.exec_time_s * 0.25).max(1e-6),
            ));
        }
        let mut cfg = agg.clone();
        cfg.faults = plan;
        let (faulty, events) =
            ipsc::try_run_traced(&trace, &cfg).expect("faulty aggregated run completes");

        prop_assert_eq!(&faulty.final_versions, &clean.final_versions);
        prop_assert!(faulty.tasks_executed >= clean.tasks_executed);
        prop_assert!(
            faulty.tasks_executed as u64 <= clean.tasks_executed as u64 + faulty.tasks_reexecuted
        );
        check_lifecycle(&events).expect("lifecycle holds under faults with aggregation");
        let m = Metrics::from_events(&events, procs);
        check_conservation(&events, procs, m.makespan_ps)
            .expect("spans tile the makespan under faults with aggregation");
        prop_assert_eq!(m.agg_fetches, faulty.agg_fetches);
        prop_assert_eq!(m.agg_objects, faulty.agg_objects);
        prop_assert_eq!(m.msgs_dropped, faulty.msgs_dropped);
        prop_assert_eq!(m.msgs_discarded, faulty.msgs_discarded);

        // Same seed, same plan: deterministic.
        let again = ipsc::try_run(&trace, &cfg).expect("repeat run completes");
        prop_assert_eq!(again.exec_time_s, faulty.exec_time_s);
        prop_assert_eq!(again.agg_fetches, faulty.agg_fetches);
        prop_assert_eq!(again.msgs_retried, faulty.msgs_retried);
    }

    /// Split-phase prefetch (DESIGN.md §17) rides the same unreliable data
    /// plane as demand fetches: under random drops, duplicates, fail-stops
    /// and checkpoints — optionally stacked on aggregation — the prefetched
    /// run still computes the fault-free final versions, the event stream
    /// stays well-formed with prefetch counters matching the native
    /// tallies, and the whole thing is deterministic per seed.
    #[test]
    fn irregular_apps_survive_faults_with_prefetch(
        pick_halo in any::<bool>(),
        procs in 2usize..7,
        drop in 0u32..16,
        dup in 0u32..9,
        fail in any::<bool>(),
        ckpt in any::<bool>(),
        aggregate in any::<bool>(),
        fail_pick in any::<u64>(),
        app_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let trace = if pick_halo {
            let cfg = HaloConfig { seed: app_seed, ..HaloConfig::small(procs) };
            halo::run_trace(&cfg).0
        } else {
            let cfg = PagerankConfig { seed: app_seed, ..PagerankConfig::small(procs) };
            pagerank::run_trace(&cfg).0
        };
        let base = IpscConfig::paper(procs, LocalityMode::TaskPlacement, 1e-6);
        let mut pf = base.clone();
        pf.prefetch = true;
        pf.aggregate_fetches = aggregate;
        let clean_off = ipsc::try_run(&trace, &base).expect("fault-free run completes");
        let clean = ipsc::try_run(&trace, &pf).expect("fault-free prefetched run completes");
        prop_assert_eq!(
            &clean.final_versions, &clean_off.final_versions,
            "prefetch alone changed the results"
        );

        let mut plan = FaultPlan {
            drop_p: drop as f64 / 100.0,
            dup_p: dup as f64 / 100.0,
            seed,
            ..FaultPlan::none()
        };
        if fail {
            plan.fail_proc = Some(1 + (fail_pick as usize) % (procs - 1));
            plan.fail_at = SimDuration::from_secs_f64(clean.exec_time_s * 0.5);
        }
        if ckpt {
            plan.checkpoint = Some(SimDuration::from_secs_f64(
                (clean.exec_time_s * 0.25).max(1e-6),
            ));
        }
        let mut cfg = pf.clone();
        cfg.faults = plan;
        let (faulty, events) =
            ipsc::try_run_traced(&trace, &cfg).expect("faulty prefetched run completes");

        prop_assert_eq!(&faulty.final_versions, &clean.final_versions);
        prop_assert!(faulty.tasks_executed >= clean.tasks_executed);
        prop_assert!(
            faulty.tasks_executed as u64 <= clean.tasks_executed as u64 + faulty.tasks_reexecuted
        );
        check_lifecycle(&events).expect("lifecycle holds under faults with prefetch");
        let m = Metrics::from_events(&events, procs);
        check_conservation(&events, procs, m.makespan_ps)
            .expect("spans tile the makespan under faults with prefetch");
        prop_assert_eq!(m.prefetches_issued, faulty.prefetches_issued);
        prop_assert_eq!(m.prefetch_hits, faulty.prefetch_hits);
        prop_assert_eq!(m.prefetch_stale, faulty.prefetch_stale);
        prop_assert!(
            faulty.prefetch_hits + faulty.prefetch_stale <= faulty.prefetches_issued,
            "hit/stale accounting exceeds issues"
        );
        prop_assert!(faulty.overlap_frac >= 0.0 && faulty.overlap_frac <= 1.0 + 1e-12);

        // Same seed, same plan: deterministic.
        let again = ipsc::try_run(&trace, &cfg).expect("repeat run completes");
        prop_assert_eq!(again.exec_time_s, faulty.exec_time_s);
        prop_assert_eq!(again.prefetches_issued, faulty.prefetches_issued);
        prop_assert_eq!(again.msgs_retried, faulty.msgs_retried);
    }
}
