//! Jade's core semantic guarantee: a Jade program produces the same result
//! as its serial elaboration, on every backend. Each application is run
//! through the serially-executing trace runtime, the plain serial
//! reference, and the real-thread parallel backend, and the outputs must
//! agree bit-for-bit (the applications order their reductions explicitly,
//! so even floating point is deterministic).

use jade::apps::{cholesky, ocean, string_app, water};
use jade::ThreadRuntime;

#[test]
fn water_parallel_matches_serial() {
    let cfg = water::WaterConfig::small(4);
    let (_, trace_out) = water::run_trace(&cfg);
    let mut rt = ThreadRuntime::new(4);
    let thread_out = water::run_on(&mut rt, &cfg);
    assert_eq!(trace_out, thread_out);
}

#[test]
fn string_parallel_matches_serial() {
    let cfg = string_app::StringConfig::small(3);
    let (_, trace_out) = string_app::run_trace(&cfg);
    let mut rt = ThreadRuntime::new(4);
    let thread_out = string_app::run_on(&mut rt, &cfg);
    assert_eq!(trace_out, thread_out);
}

#[test]
fn ocean_parallel_matches_serial() {
    let cfg = ocean::OceanConfig::small(5);
    let (_, trace_out) = ocean::run_trace(&cfg);
    let mut rt = ThreadRuntime::new(4);
    let thread_out = ocean::run_on(&mut rt, &cfg);
    assert_eq!(trace_out, thread_out);
    // And both match the independent block-structured reference.
    let (ref_out, _) = ocean::reference_blocks(&cfg, cfg.blocks());
    assert_eq!(trace_out, ref_out);
}

#[test]
fn cholesky_parallel_matches_serial() {
    let cfg = cholesky::CholeskyConfig::small(4);
    let (_, trace_out) = cholesky::run_trace(&cfg);
    let mut rt = ThreadRuntime::new(4);
    let thread_out = cholesky::run_on(&mut rt, &cfg);
    assert_eq!(trace_out, thread_out);
    let (ref_out, _) = cholesky::reference(&cfg);
    assert_eq!(trace_out, ref_out);
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    // Scheduling varies between runs; results must not.
    let cfg = water::WaterConfig::small(3);
    let mut outs = Vec::new();
    for _ in 0..3 {
        let mut rt = ThreadRuntime::new(8);
        outs.push(water::run_on(&mut rt, &cfg));
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[1], outs[2]);
}

#[test]
fn worker_count_does_not_change_results() {
    let cfg = cholesky::CholeskyConfig::small(3);
    let mut last = None;
    for workers in [1usize, 2, 7] {
        let mut rt = ThreadRuntime::new(workers);
        let out = cholesky::run_on(&mut rt, &cfg);
        if let Some(prev) = last {
            assert_eq!(prev, out, "workers={workers}");
        }
        last = Some(out);
    }
}
