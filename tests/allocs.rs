//! The counting-allocator harness and the zero-allocation steady-state
//! gate.
//!
//! This test binary installs a counting `#[global_allocator]` shim (the
//! same ~12 lines as the `repro` binary — it cannot live in a library:
//! `jade-bench` is `#![forbid(unsafe_code)]`, and Rust allows exactly one
//! global allocator per binary). Three things are covered:
//!
//! 1. the counter actually observes a deliberate allocation (the harness
//!    is not vacuously "passing" a dead counter);
//! 2. at equilibrium, the sharded scheduler's dispatch → execute →
//!    complete → retire cycle performs **zero** heap allocations per task
//!    on the SchedStress shape, for both deque implementations — measured
//!    differentially (a 2N-task batch must allocate exactly as much as an
//!    N-task batch, so per-batch fixed costs like thread spawns cancel);
//! 3. when no counting shim feeds the counter (another global allocator
//!    is active), the probe reports inactive and the assertions skip
//!    cleanly — the probe side of that contract is exercised in
//!    `jade-bench`'s in-crate tests, which install no shim.

use jade_core::{JadeRuntime, TaskBuilder};
use jade_threads::{DequeImpl, SchedMode, ThreadRuntime};
use std::sync::Mutex;

struct CountingAlloc;

// SAFETY: pure delegation to the system allocator — same layout
// contracts, same returned pointers; the only addition is a relaxed
// counter increment on the allocating paths.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        jade_bench::alloc::note_alloc();
        std::alloc::GlobalAlloc::alloc(&std::alloc::System, layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::GlobalAlloc::dealloc(&std::alloc::System, ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        jade_bench::alloc::note_alloc();
        std::alloc::GlobalAlloc::realloc(&std::alloc::System, ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the allocation-sensitive tests: a concurrent test's
/// allocations would pollute another's measurement window.
static SERIAL: Mutex<()> = Mutex::new(());

/// Clean-skip guard: with a different global allocator active nothing
/// feeds the counter, and alloc assertions would pass vacuously — skip
/// loudly instead.
fn counting_inactive() -> bool {
    if jade_bench::alloc::counting_active() {
        return false;
    }
    eprintln!("skipping: no counting global allocator is active in this binary");
    true
}

#[test]
fn counter_observes_a_deliberate_allocation() {
    let _guard = SERIAL.lock().unwrap();
    if counting_inactive() {
        return;
    }
    let (n, v) = jade_bench::alloc::allocs_during(|| std::hint::black_box(vec![0u8; 4096]));
    assert!(n >= 1, "a 4 KiB Vec must hit the allocator (saw {n})");
    drop(v);
}

#[test]
fn probe_reports_active_with_the_shim_installed() {
    let _guard = SERIAL.lock().unwrap();
    assert!(
        jade_bench::alloc::counting_active(),
        "this binary installs the shim; the probe must see it"
    );
}

const STRESS_OBJECTS: usize = 16;

/// One differential measurement: allocations during `finish()` for a
/// batch of `2n` minus a batch of `n` tasks, after warming the runtime's
/// arena and synchronizer window at the larger size. At equilibrium the
/// difference is exactly zero — every per-task allocation would show up
/// `n` times over.
fn steady_state_alloc_delta(rt: &mut ThreadRuntime, counters: &[jade_core::Handle<u64>]) -> u64 {
    let n = 1000usize;
    let submit = |rt: &mut ThreadRuntime, count: usize| {
        for i in 0..count {
            let c = counters[i % STRESS_OBJECTS];
            rt.submit(TaskBuilder::new("inc").rd_wr(c).body(move |ctx| {
                *ctx.wr(c) += 1;
            }));
        }
    };
    for _ in 0..3 {
        submit(rt, 2 * n);
        rt.finish();
    }
    submit(rt, n);
    let (a1, ()) = jade_bench::alloc::allocs_during(|| rt.finish());
    submit(rt, 2 * n);
    let (a2, ()) = jade_bench::alloc::allocs_during(|| rt.finish());
    a2.saturating_sub(a1)
}

#[test]
fn steady_state_allocs_per_task_is_zero_for_both_deques() {
    let _guard = SERIAL.lock().unwrap();
    if counting_inactive() {
        return;
    }
    for deque in [DequeImpl::Locked, DequeImpl::ChaseLev] {
        for workers in [1usize, 2] {
            let mut rt = ThreadRuntime::with_mode(workers, SchedMode::Sharded);
            rt.set_deque_impl(deque);
            let counters: Vec<_> = (0..STRESS_OBJECTS)
                .map(|i| rt.create(&format!("c{i}"), 8, 0u64))
                .collect();
            // The test-harness runner may allocate on its own threads
            // mid-window (it only ever inflates the count), so accept
            // the first of a few attempts that lands clean; a genuine
            // per-task allocation inflates *every* attempt by >= 1000.
            let mut deltas = Vec::new();
            let clean = (0..5).any(|_| {
                let d = steady_state_alloc_delta(&mut rt, &counters);
                deltas.push(d);
                d == 0
            });
            assert!(
                clean,
                "{} @ {workers} workers: steady-state batches kept allocating \
                 (extra allocs for +1000 tasks across attempts: {deltas:?})",
                deque.name()
            );
        }
    }
}
