//! Differential determinism between the two thread-backend schedulers and
//! the two batch policies.
//!
//! The sharded work-stealing executor must be *observationally identical*
//! to the seed single-lock scheduler: for any random task DAG, any worker
//! count and any injected-fault plan, both modes must produce bit-identical
//! application results and the same deterministic event counters. The same
//! contract holds for transition batching: a run that flushes completions
//! through per-worker drain buffers (`BatchPolicy::Auto`) must be
//! indistinguishable from per-task flushing (`BatchPolicy::PerTask`)
//! except in speed. Stealing and locality splits are scheduling accidents
//! and legitimately differ; everything Jade semantics pins down must not.

use jade::apps::pagerank::{self, PagerankConfig};
use jade::core::Metrics;
use jade::threads::FaultPlan;
use jade::{
    BatchPolicy, DequeImpl, JadeRuntime, LocalityMode, SchedMode, TaskBuilder, ThreadRuntime,
};
use proptest::prelude::*;

const OBJECTS: usize = 4;

/// A random program: for each task, a set of (object, is_write) accesses.
fn program_strategy(max_tasks: usize) -> impl Strategy<Value = Vec<Vec<(u8, bool)>>> {
    prop::collection::vec(
        prop::collection::vec(((0..OBJECTS as u8), any::<bool>()), 0..5),
        1..max_tasks,
    )
}

/// The interleaving-independent slice of the metrics. Steals, locality
/// hits and checkpoint restores depend on timing; these do not.
type Counters = (usize, usize, usize, usize, usize, u64, u64, u64, u64);

fn deterministic_counters(m: &Metrics) -> Counters {
    (
        m.tasks_created,
        m.tasks_enabled,
        m.tasks_dispatched,
        m.tasks_started,
        m.tasks_completed,
        m.releases,
        m.workers_failed,
        m.tasks_reexecuted,
        m.checkpoints,
    )
}

/// Submit the random program's tasks to `rt` and return the object handles.
fn submit_program(rt: &mut ThreadRuntime, prog: &[Vec<(u8, bool)>]) -> Vec<jade::Handle<Vec<u32>>> {
    let objs: Vec<_> = (0..OBJECTS)
        .map(|i| rt.create(&format!("o{i}"), 8, Vec::<u32>::new()))
        .collect();
    for (i, accesses) in prog.iter().enumerate() {
        let mut tb = TaskBuilder::new("p");
        let mut writes = Vec::new();
        let mut seen = [false; OBJECTS];
        for &(o, w) in accesses {
            let o = o as usize % OBJECTS;
            if seen[o] {
                continue;
            }
            seen[o] = true;
            if w {
                tb = tb.rd_wr(objs[o]);
                writes.push(objs[o]);
            } else {
                tb = tb.rd(objs[o]);
            }
        }
        rt.submit(tb.body(move |ctx| {
            for &h in &writes {
                ctx.wr(h).push(i as u32);
            }
        }));
    }
    objs
}

/// Run `prog` on a fresh *traced* runtime; return the final value of every
/// object (each task appends its id to each object it writes) plus the
/// deterministic counters.
fn run_mode(
    prog: &[Vec<(u8, bool)>],
    workers: usize,
    mode: SchedMode,
    deque: DequeImpl,
    policy: BatchPolicy,
    plan: Option<FaultPlan>,
) -> (Vec<Vec<u32>>, Counters) {
    let mut rt = ThreadRuntime::with_mode(workers, mode);
    rt.set_deque_impl(deque);
    rt.set_batch_policy(policy);
    rt.enable_events();
    if let Some(p) = plan {
        rt.inject_faults(p);
    }
    let objs = submit_program(&mut rt, prog);
    rt.finish();
    let results = objs.iter().map(|&h| rt.store().read(h).clone()).collect();
    let events = rt.take_events();
    jade::core::check_lifecycle(&events).expect("lifecycle holds");
    let m = Metrics::from_events(&events, workers);
    (results, deterministic_counters(&m))
}

/// Run `prog` *untraced*, so `BatchPolicy::Auto` drain buffers genuinely
/// fill (tracing clamps the flush threshold to one). Returns outputs plus
/// the deterministic slice of `BatchStats`.
fn run_mode_untraced(
    prog: &[Vec<(u8, bool)>],
    workers: usize,
    mode: SchedMode,
    deque: DequeImpl,
    policy: BatchPolicy,
    plan: Option<FaultPlan>,
) -> (Vec<Vec<u32>>, (usize, usize, usize)) {
    let mut rt = ThreadRuntime::with_mode(workers, mode);
    rt.set_deque_impl(deque);
    rt.set_batch_policy(policy);
    if let Some(p) = plan {
        rt.inject_faults(p);
    }
    let objs = submit_program(&mut rt, prog);
    rt.finish();
    let results = objs.iter().map(|&h| rt.store().read(h).clone()).collect();
    let s = rt.last_stats();
    (results, (s.executed, s.recoveries, s.checkpoints))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free: both schedulers — and both sharded deque impls — agree
    /// on results and counters for every worker count.
    #[test]
    fn modes_agree_without_faults(prog in program_strategy(40)) {
        for workers in [1usize, 2, 4, 8] {
            let (rb, cb) = run_mode(
                &prog, workers, SchedMode::GlobalLock, DequeImpl::Locked, BatchPolicy::Auto, None,
            );
            for deque in [DequeImpl::Locked, DequeImpl::ChaseLev] {
                let (ra, ca) = run_mode(
                    &prog, workers, SchedMode::Sharded, deque, BatchPolicy::Auto, None,
                );
                prop_assert_eq!(
                    &ra, &rb, "results diverged at {} workers ({:?})", workers, deque
                );
                prop_assert_eq!(
                    ca, cb, "counters diverged at {} workers ({:?})", workers, deque
                );
            }
        }
    }

    /// Under injected crashes (and checkpointing), recovery keeps both
    /// schedulers bit-identical: `FaultPlan::task_fails` is a pure hash of
    /// (seed, task, attempt), so even the re-execution counts must match.
    #[test]
    fn modes_agree_under_fault_injection(
        prog in program_strategy(30),
        seed in any::<u64>(),
        wsel in 0usize..4,
        psel in 0usize..3,
    ) {
        let workers = [1usize, 2, 4, 8][wsel];
        let panic_p = [0.1, 0.3, 0.5][psel];
        let plan = FaultPlan {
            panic_p,
            seed,
            checkpoint: Some(jade::dsim::SimDuration::from_secs_f64(5.0)),
            ..FaultPlan::none()
        };
        let (rb, cb) = run_mode(
            &prog, workers, SchedMode::GlobalLock, DequeImpl::Locked, BatchPolicy::Auto, Some(plan),
        );
        for deque in [DequeImpl::Locked, DequeImpl::ChaseLev] {
            let (ra, ca) = run_mode(
                &prog, workers, SchedMode::Sharded, deque, BatchPolicy::Auto, Some(plan),
            );
            prop_assert_eq!(
                &ra, &rb, "results diverged: {} workers, p={}, {:?}", workers, panic_p, deque
            );
            prop_assert_eq!(
                ca, cb, "counters diverged: {} workers, p={}, {:?}", workers, panic_p, deque
            );
        }
    }

    /// Batched (`auto`) vs per-task (`batch=1`) flushing, untraced so the
    /// drain buffers genuinely fill: bit-identical outputs and identical
    /// deterministic stats, in both scheduler modes, across worker counts
    /// and random crash injection.
    #[test]
    fn batch_policies_agree(
        prog in program_strategy(30),
        seed in any::<u64>(),
        wsel in 0usize..4,
        fsel in 0usize..3,
    ) {
        let workers = [1usize, 2, 4, 8][wsel];
        let plan = match fsel {
            0 => None,
            1 => Some(FaultPlan { panic_p: 0.3, seed, ..FaultPlan::none() }),
            _ => Some(FaultPlan {
                panic_p: 0.2,
                seed,
                checkpoint: Some(jade::dsim::SimDuration::from_secs_f64(4.0)),
                ..FaultPlan::none()
            }),
        };
        for (mode, deque) in [
            (SchedMode::Sharded, DequeImpl::Locked),
            (SchedMode::Sharded, DequeImpl::ChaseLev),
            (SchedMode::GlobalLock, DequeImpl::Locked),
        ] {
            let (ra, sa) = run_mode_untraced(&prog, workers, mode, deque, BatchPolicy::Auto, plan);
            let (rb, sb) = run_mode_untraced(&prog, workers, mode, deque, BatchPolicy::PerTask, plan);
            prop_assert_eq!(
                &ra, &rb,
                "{:?}/{:?}: batched results diverged from batch=1 at {} workers (faults {})",
                mode, deque, workers, fsel
            );
            prop_assert_eq!(
                sa, sb,
                "{:?}/{:?}: deterministic stats diverged at {} workers (faults {})",
                mode, deque, workers, fsel
            );
        }
    }

    /// Traced runs must be *event-stream* identical across batch policies
    /// at one worker, and counter-identical at any worker count — batching
    /// may never change what the metrics layer reconstructs.
    #[test]
    fn batch_policies_agree_on_traced_counters(
        prog in program_strategy(25),
        seed in any::<u64>(),
        wsel in 0usize..4,
    ) {
        let workers = [1usize, 2, 4, 8][wsel];
        let plan = FaultPlan { panic_p: 0.2, seed, ..FaultPlan::none() };
        for (mode, deque) in [
            (SchedMode::Sharded, DequeImpl::Locked),
            (SchedMode::Sharded, DequeImpl::ChaseLev),
            (SchedMode::GlobalLock, DequeImpl::Locked),
        ] {
            let (ra, ca) = run_mode(&prog, workers, mode, deque, BatchPolicy::Auto, Some(plan));
            let (rb, cb) = run_mode(&prog, workers, mode, deque, BatchPolicy::PerTask, Some(plan));
            prop_assert_eq!(
                &ra, &rb, "{:?}/{:?}: results diverged at {} workers", mode, deque, workers
            );
            prop_assert_eq!(
                ca, cb, "{:?}/{:?}: counters diverged at {} workers", mode, deque, workers
            );
        }
    }

    /// One worker erases all scheduling freedom: the two modes and the two
    /// batch policies must emit *identical event streams*, not just
    /// identical counters. (The default `DequeImpl::Locked` only: the
    /// Chase-Lev deque pops owner-LIFO, a different — equally legal —
    /// dispatch order, so its streams are covered by the counter and
    /// output checks above instead.)
    #[test]
    fn one_worker_streams_identical(prog in program_strategy(25)) {
        let run = |mode: SchedMode, policy: BatchPolicy| {
            let mut rt = ThreadRuntime::with_mode(1, mode);
            rt.set_batch_policy(policy);
            rt.enable_events();
            let objs: Vec<_> = (0..OBJECTS)
                .map(|i| rt.create(&format!("o{i}"), 8, 0u64))
                .collect();
            for (i, accesses) in prog.iter().enumerate() {
                let mut tb = TaskBuilder::new("p");
                let mut writes = Vec::new();
                let mut seen = [false; OBJECTS];
                for &(o, w) in accesses {
                    let o = o as usize % OBJECTS;
                    if seen[o] {
                        continue;
                    }
                    seen[o] = true;
                    if w {
                        tb = tb.rd_wr(objs[o]);
                        writes.push(objs[o]);
                    } else {
                        tb = tb.rd(objs[o]);
                    }
                }
                rt.submit(tb.body(move |ctx| {
                    for &h in &writes {
                        *ctx.wr(h) += i as u64;
                    }
                }));
            }
            rt.finish();
            rt.take_events()
        };
        let reference = run(SchedMode::Sharded, BatchPolicy::PerTask);
        for (mode, policy) in [
            (SchedMode::Sharded, BatchPolicy::Auto),
            (SchedMode::GlobalLock, BatchPolicy::PerTask),
            (SchedMode::GlobalLock, BatchPolicy::Auto),
        ] {
            let eb = run(mode, policy);
            prop_assert_eq!(
                &reference, &eb,
                "one-worker event streams diverged ({:?}, {:?})", mode, policy
            );
        }
    }

    /// Irregular access sets don't weaken the contract: PageRank over a
    /// *random* power-law graph (access sets computed from the graph at
    /// spawn time) must produce bit-identical ranks and identical
    /// deterministic counters across schedulers and worker counts.
    #[test]
    fn pagerank_modes_agree(
        seed in any::<u64>(),
        nodes in 48usize..160,
        epn in 2usize..5,
        iters in 1usize..4,
    ) {
        let run = |workers: usize, mode: SchedMode, deque: DequeImpl| {
            let cfg = PagerankConfig {
                nodes,
                edges_per_node: epn,
                iterations: iters,
                ..PagerankConfig::small(workers)
            };
            let cfg = PagerankConfig { seed, ..cfg };
            let mut rt = ThreadRuntime::with_mode(workers, mode);
            rt.set_deque_impl(deque);
            rt.enable_events();
            let out = pagerank::run_on(&mut rt, &cfg);
            let events = rt.take_events();
            jade::core::check_lifecycle(&events).expect("lifecycle holds");
            let m = Metrics::from_events(&events, workers);
            (out, deterministic_counters(&m))
        };
        for workers in [1usize, 2, 4] {
            let (rb, cb) = run(workers, SchedMode::GlobalLock, DequeImpl::Locked);
            for deque in [DequeImpl::Locked, DequeImpl::ChaseLev] {
                let (ra, ca) = run(workers, SchedMode::Sharded, deque);
                prop_assert_eq!(
                    ra, rb.clone(),
                    "ranks diverged at {} workers (seed {}, {:?})", workers, seed, deque
                );
                prop_assert_eq!(
                    ca, cb, "counters diverged at {} workers (seed {}, {:?})", workers, seed, deque
                );
            }
        }
    }

    /// The inspector/executor aggregation pass is a pure communication
    /// optimization: on the simulated iPSC/860 it must leave the final
    /// object versions (the application result as the communicator sees
    /// it), the executed task count and the per-object fetch totals of a
    /// random-graph PageRank untouched — only message counts may change.
    #[test]
    fn pagerank_aggregation_is_invisible(
        seed in any::<u64>(),
        nodes in 48usize..160,
        psel in 0usize..3,
    ) {
        let procs = [2usize, 4, 8][psel];
        let cfg = PagerankConfig {
            nodes,
            iterations: 2,
            seed,
            ..PagerankConfig::small(procs)
        };
        let (trace, _) = pagerank::run_trace(&cfg);
        let spo = 1e-6;
        let run = |aggregate: bool| {
            let mut mc = jade::ipsc::IpscConfig::paper(procs, LocalityMode::TaskPlacement, spo);
            mc.aggregate_fetches = aggregate;
            jade::ipsc::run(&trace, &mc)
        };
        let off = run(false);
        let on = run(true);
        prop_assert_eq!(
            &on.final_versions, &off.final_versions,
            "final versions diverged (seed {}, x{})", seed, procs
        );
        prop_assert_eq!(on.tasks_executed, off.tasks_executed);
        let msgs_off = off.requests + off.fetch_messages;
        let msgs_on = on.requests + on.fetch_messages;
        prop_assert!(
            msgs_on <= msgs_off,
            "aggregation added messages ({} -> {})", msgs_off, msgs_on
        );
    }

    /// Split-phase prefetch (DESIGN.md §17) is equally invisible: alone or
    /// stacked on aggregation, a random-graph PageRank computes the same
    /// final object versions and task count, every prefetched object is
    /// accounted as a hit or a stale refetch, and the overlap fraction
    /// stays in [0, 1].
    #[test]
    fn pagerank_prefetch_is_invisible(
        seed in any::<u64>(),
        nodes in 48usize..160,
        psel in 0usize..3,
        aggregate in any::<bool>(),
    ) {
        let procs = [2usize, 4, 8][psel];
        let cfg = PagerankConfig {
            nodes,
            iterations: 2,
            seed,
            ..PagerankConfig::small(procs)
        };
        let (trace, _) = pagerank::run_trace(&cfg);
        let run = |prefetch: bool| {
            let mut mc = jade::ipsc::IpscConfig::paper(procs, LocalityMode::TaskPlacement, 1e-6);
            mc.aggregate_fetches = aggregate;
            mc.prefetch = prefetch;
            jade::ipsc::run(&trace, &mc)
        };
        let off = run(false);
        let on = run(true);
        prop_assert_eq!(
            &on.final_versions, &off.final_versions,
            "final versions diverged (seed {}, x{}, agg {})", seed, procs, aggregate
        );
        prop_assert_eq!(on.tasks_executed, off.tasks_executed);
        prop_assert_eq!(off.prefetches_issued, 0);
        prop_assert!(
            on.prefetch_hits + on.prefetch_stale <= on.prefetches_issued,
            "hit/stale counts exceed issues ({} + {} > {})",
            on.prefetch_hits, on.prefetch_stale, on.prefetches_issued
        );
        prop_assert!(on.overlap_frac >= 0.0 && on.overlap_frac <= 1.0 + 1e-12);
    }

    /// The schedule-replay harness behind the overlap sweep, as a property:
    /// record a baseline, pin its placement and per-processor start order,
    /// turn prefetch on, and the simulated time never grows — for any
    /// random graph and processor count. This is the monotonicity argument
    /// of DESIGN.md §17 checked end to end.
    #[test]
    fn pagerank_pinned_prefetch_is_monotone(
        seed in any::<u64>(),
        nodes in 48usize..120,
        psel in 0usize..3,
    ) {
        let procs = [2usize, 4, 8][psel];
        let cfg = PagerankConfig {
            nodes,
            iterations: 2,
            seed,
            ..PagerankConfig::small(procs)
        };
        let (trace, _) = pagerank::run_trace(&cfg);
        let base = jade::ipsc::IpscConfig::paper(procs, LocalityMode::TaskPlacement, 1e-6);
        let (off, events) = jade::ipsc::run_traced(&trace, &base);
        let mut pf = base.clone();
        pf.prefetch = true;
        pf.pinned = Some(jade::ipsc::PinnedSchedule::from_events(trace.tasks.len(), &events));
        let on = jade::ipsc::run(&trace, &pf);
        prop_assert_eq!(&on.final_versions, &off.final_versions);
        prop_assert_eq!(on.tasks_executed, off.tasks_executed);
        prop_assert!(
            on.exec_time_s <= off.exec_time_s + 1e-9,
            "pinned prefetch run slower than its recording ({} vs {}, seed {}, x{})",
            on.exec_time_s, off.exec_time_s, seed, procs
        );
    }
}
