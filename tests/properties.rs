//! Property-based tests over random task DAGs: the synchronizer, the thread
//! backend, and both machine simulators must uphold Jade's semantics for
//! *any* program, not just the four applications.

use jade::core::{AccessSpec, Synchronizer, TaskBuilder, TaskId, TraceBuilder};
use jade::dash::{self, DashConfig};
use jade::ipsc::{self, IpscConfig};
use jade::JadeRuntime;
use jade::{LocalityMode, ThreadRuntime};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A random program: for each task, a set of (object, is_write) accesses.
fn program_strategy(
    max_tasks: usize,
    max_objects: usize,
) -> impl Strategy<Value = Vec<Vec<(u8, bool)>>> {
    prop::collection::vec(
        prop::collection::vec(((0..max_objects as u8), any::<bool>()), 0..5),
        1..max_tasks,
    )
}

fn spec_of(accesses: &[(u8, bool)]) -> AccessSpec {
    let mut s = AccessSpec::new();
    for &(o, w) in accesses {
        if w {
            s.wr(jade::ObjectId(o as u32));
        } else {
            s.rd(jade::ObjectId(o as u32));
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The synchronizer executes every task exactly once, never enables two
    /// conflicting tasks at the same time, and orders conflicting pairs by
    /// program order — for any random program and any completion order.
    #[test]
    fn synchronizer_preserves_dependences(prog in program_strategy(40, 6), pick in any::<u64>()) {
        let specs: Vec<AccessSpec> = prog.iter().map(|a| spec_of(a)).collect();
        let mut sync = Synchronizer::new(true);
        let mut enabled: Vec<TaskId> = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            if sync.add_task(TaskId(i as u32), s) {
                enabled.push(TaskId(i as u32));
            }
        }
        let mut finished: Vec<TaskId> = Vec::new();
        let mut running: Vec<TaskId> = Vec::new();
        let mut rng = pick;
        let mut completed = vec![false; specs.len()];
        while !enabled.is_empty() || !running.is_empty() {
            // Randomly either start an enabled task or finish a running one.
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let start = !enabled.is_empty() && (running.is_empty() || rng.is_multiple_of(2));
            if start {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let idx = (rng >> 33) as usize % enabled.len();
                let t = enabled.swap_remove(idx);
                // No running task may conflict with the newly started one.
                for &r in &running {
                    prop_assert!(
                        !specs[t.index()].conflicts_with(&specs[r.index()]),
                        "conflicting tasks {t:?} and {r:?} concurrently enabled"
                    );
                }
                running.push(t);
            } else {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let idx = (rng >> 33) as usize % running.len();
                let t = running.swap_remove(idx);
                // Conflicting predecessors must already be complete.
                for e in 0..t.index() {
                    if specs[e].conflicts_with(&specs[t.index()]) {
                        prop_assert!(completed[e], "task {t:?} ran before conflicting predecessor {e}");
                    }
                }
                completed[t.index()] = true;
                finished.push(t);
                sync.complete(t, &mut enabled);
            }
        }
        prop_assert_eq!(finished.len(), specs.len(), "every task completes (no deadlock)");
        prop_assert!(sync.all_complete());
    }

    /// Without replication, no two tasks touching a common object ever run
    /// concurrently, even pure readers.
    #[test]
    fn no_replication_fully_serializes_shared_readers(n in 2usize..20) {
        let mut sync = Synchronizer::new(false);
        let mut spec = AccessSpec::new();
        spec.rd(jade::ObjectId(0));
        let mut enabled = Vec::new();
        for i in 0..n {
            if sync.add_task(TaskId(i as u32), &spec) {
                enabled.push(TaskId(i as u32));
            }
        }
        let mut count = 0;
        while let Some(t) = enabled.pop() {
            prop_assert!(enabled.is_empty(), "readers must be serialized");
            count += 1;
            sync.complete(t, &mut enabled);
        }
        prop_assert_eq!(count, n);
    }

    /// The thread backend executes any random program to completion with
    /// conflicting writes applied in program order. Each task appends its id
    /// to every object it writes; per object, the recorded writer ids must
    /// be in increasing program order.
    #[test]
    fn thread_backend_orders_writes(prog in program_strategy(25, 4), workers in 1usize..5) {
        let mut rt = ThreadRuntime::new(workers);
        let objs: Vec<_> = (0..4).map(|i| rt.create(&format!("o{i}"), 8, Vec::<u32>::new())).collect();
        let executed = Arc::new(AtomicUsize::new(0));
        let ntasks = prog.len();
        for (i, accesses) in prog.iter().enumerate() {
            let mut tb = TaskBuilder::new("p");
            let mut writes = Vec::new();
            let mut seen = [false; 4];
            for &(o, w) in accesses {
                let o = (o % 4) as usize;
                if seen[o] {
                    continue;
                }
                seen[o] = true;
                if w {
                    tb = tb.rd_wr(objs[o]);
                    writes.push(objs[o]);
                } else {
                    tb = tb.rd(objs[o]);
                }
            }
            let executed = Arc::clone(&executed);
            rt.submit(tb.body(move |ctx| {
                for &h in &writes {
                    ctx.wr(h).push(i as u32);
                }
                executed.fetch_add(1, Ordering::SeqCst);
            }));
        }
        rt.finish();
        prop_assert_eq!(executed.load(Ordering::SeqCst), ntasks);
        for &h in &objs {
            let log = rt.store().read(h);
            let mut sorted = log.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&*log, &sorted[..], "writes must land in program order");
        }
    }

    /// Random mid-task releases never violate dependences: after a task
    /// releases an object, successors on that object may run, but the
    /// synchronizer must still execute every task and never co-enable
    /// conflicting accesses to *unreleased* objects.
    #[test]
    fn synchronizer_release_is_safe(prog in program_strategy(25, 4), pick in any::<u64>()) {
        let specs: Vec<AccessSpec> = prog.iter().map(|a| spec_of(a)).collect();
        let mut sync = Synchronizer::new(true);
        let mut enabled: Vec<TaskId> = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            if sync.add_task(TaskId(i as u32), s) {
                enabled.push(TaskId(i as u32));
            }
        }
        let mut rng = pick;
        let mut done = 0;
        while let Some(t) = enabled.pop() {
            // Randomly release a prefix of the task's objects before
            // completing it.
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let decls: Vec<_> = specs[t.index()].decls().to_vec();
            let k = if decls.is_empty() { 0 } else { (rng >> 33) as usize % (decls.len() + 1) };
            for d in decls.iter().take(k) {
                sync.release(t, d.object, &mut enabled);
            }
            sync.complete(t, &mut enabled);
            done += 1;
        }
        prop_assert_eq!(done, specs.len(), "every task completes");
        prop_assert!(sync.all_complete());
    }

    /// Both machine simulators execute any random program to completion,
    /// deterministically, with a makespan no better than perfect speedup
    /// and no worse than fully serial execution plus overheads.
    #[test]
    fn simulators_complete_any_program(
        prog in program_strategy(30, 5),
        procs in 1usize..9,
    ) {
        let mut b = TraceBuilder::new();
        let objs: Vec<_> = (0..5).map(|i| b.object(&format!("o{i}"), 256, Some(i % procs))).collect();
        let mut total_work = 0.0;
        for accesses in &prog {
            let mut s = AccessSpec::new();
            for &(o, w) in accesses {
                if w {
                    s.wr(objs[(o % 5) as usize]);
                } else {
                    s.rd(objs[(o % 5) as usize]);
                }
            }
            b.task(s, 0.01);
            total_work += 0.01;
        }
        let trace = b.build();
        let d = dash::run(&trace, &DashConfig::paper(procs, LocalityMode::Locality, 1.0));
        prop_assert_eq!(d.tasks_executed, trace.task_count());
        prop_assert!(d.exec_time_s >= total_work / procs as f64 * 0.94);
        prop_assert!(d.exec_time_s <= total_work + 2.0, "{} vs {}", d.exec_time_s, total_work);
        let i = ipsc::run(&trace, &IpscConfig::paper(procs, LocalityMode::Locality, 1.0));
        prop_assert_eq!(i.tasks_executed, trace.task_count());
        prop_assert!(i.exec_time_s >= total_work / procs as f64 * 0.94);
        // Repeat run: identical.
        let d2 = dash::run(&trace, &DashConfig::paper(procs, LocalityMode::Locality, 1.0));
        prop_assert_eq!(d.exec_time_s, d2.exec_time_s);
    }
}
