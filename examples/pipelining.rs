//! Jade's advanced constructs: the `withonly!` macro and mid-task access
//! release (`ctx.release`), which lets a task give up rights to an object
//! it has finished with so successors can start — "multiple synchronization
//! points within a single task" (paper Section 2).
//!
//! A three-stage pipeline where each stage releases its input buffer as
//! soon as it has produced its output: the stages overlap across items.
//!
//! Run with: `cargo run --release --example pipelining`

use jade::core::withonly;
use jade::{JadeRuntime, ThreadRuntime};
use std::time::Instant;

const ITEMS: usize = 6;
const STAGE_MS: u64 = 30;

fn stage_work(input: u64) -> u64 {
    std::thread::sleep(std::time::Duration::from_millis(STAGE_MS));
    input * 2 + 1
}

fn run(release_early: bool, workers: usize) -> std::time::Duration {
    let mut rt = ThreadRuntime::new(workers);
    let bufs: Vec<_> = (0..ITEMS)
        .map(|i| rt.create(&format!("buf{i}"), 8, i as u64))
        .collect();
    let outs: Vec<_> = (0..ITEMS)
        .map(|i| rt.create(&format!("out{i}"), 8, 0u64))
        .collect();
    let shared = rt.create("stage-state", 8, 0u64);

    for (&buf, &out) in bufs.iter().zip(&outs) {
        // Each task needs the shared stage state only briefly at the start;
        // with release, the next item's task can begin while this one is
        // still crunching its private buffer.
        withonly!(rt, "stage", { rd_wr(shared), rd(buf), wr(out) }, move |ctx| {
            {
                let mut s = ctx.wr(shared);
                *s += 1; // brief critical section on the shared state
            }
            if release_early {
                ctx.release(shared);
            }
            let v = *ctx.rd(buf);
            *ctx.wr(out) = stage_work(v);
        });
    }
    let t0 = Instant::now();
    rt.finish();
    let wall = t0.elapsed();
    for (i, &out) in outs.iter().enumerate() {
        assert_eq!(*rt.store().read(out), (i as u64) * 2 + 1);
    }
    assert_eq!(*rt.store().read(shared), ITEMS as u64);
    wall
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(ITEMS);
    let held = run(false, workers);
    let released = run(true, workers);
    println!("{ITEMS} pipeline items, {STAGE_MS} ms of work each, {workers} workers");
    println!("  holding the shared object to completion: {held:?} (fully serialized)");
    println!("  releasing it after the critical section: {released:?}");
    if workers > 1 {
        assert!(
            released < held,
            "early release should overlap the stages: {released:?} vs {held:?}"
        );
        println!("  mid-task release overlapped the stages ✓");
    } else {
        println!("  (single worker: overlap needs more than one core)");
    }
}
