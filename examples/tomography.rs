//! Run the String application (borehole tomography) with real parallelism
//! on the thread backend and report how the inversion converges.
//!
//! Run with: `cargo run --release --example tomography`

use jade::apps::string_app::{self, StringConfig};
use jade::{JadeRuntime, ThreadRuntime};

fn main() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let cfg = StringConfig {
        nx: 96,
        nz: 192,
        src_spacing: 8,
        rcv_spacing: 4,
        iterations: 6,
        procs: workers,
    };
    println!(
        "tomographic inversion: {}x{} ft velocity image, {} rays/iteration, {} workers",
        cfg.nx,
        cfg.nz,
        cfg.rays().len(),
        workers
    );

    // Build and run the full Jade program on OS threads.
    let t0 = std::time::Instant::now();
    let mut rt = ThreadRuntime::new(workers);
    let handles = string_app::build(&mut rt, &cfg);
    rt.finish();
    let out = string_app::output(&rt, &handles);
    let wall = t0.elapsed();

    // Cross-check against the plain serial implementation.
    let (ref_out, _) = string_app::reference(&cfg);
    let rel = (out.rms_misfit - ref_out.rms_misfit).abs() / ref_out.rms_misfit.max(1e-30);
    println!(
        "final RMS travel-time misfit: {:.6e} s (serial reference: {:.6e}, rel diff {rel:.2e})",
        out.rms_misfit, ref_out.rms_misfit
    );
    println!("parallel wall time: {wall:?}");
    assert!(rel < 1e-9, "parallel result must match the serial program");
    println!("parallel result matches the serial program ✓");
}
