//! Quickstart: the Jade programming model in five minutes.
//!
//! A Jade program is a *serial* program plus declarations of how each task
//! accesses shared data. The runtime extracts the concurrency: tasks with
//! disjoint or read-only-shared access specifications run in parallel,
//! conflicting tasks run in the original serial order.
//!
//! Run with: `cargo run --release --example quickstart`

use jade::core::{chrome, Metrics};
use jade::{JadeRuntime, TaskBuilder, ThreadRuntime};

fn main() {
    // A runtime with one worker per core (real OS-thread parallelism).
    let mut rt = ThreadRuntime::default();
    println!("running on {} workers", rt.workers());

    // Record structured lifecycle events (DESIGN.md §10) for the batch.
    rt.enable_events();

    // Shared objects: the "single mutable shared memory" of Jade. The
    // second argument is the communication size used by the machine models;
    // the thread backend ignores it.
    let input = rt.create("input", 8 * 1_000, (0..1_000u64).collect::<Vec<_>>());
    let partial: Vec<_> = (0..8)
        .map(|i| rt.create(&format!("partial[{i}]"), 8, 0u64))
        .collect();
    let total = rt.create("total", 8, 0u64);

    // Parallel phase: eight tasks read the (replicated) input and write
    // their own partial sum — no conflicts, so they all run concurrently.
    for (i, &p) in partial.iter().enumerate() {
        rt.submit(
            TaskBuilder::new("partial-sum")
                .wr(p) // first declaration = locality object
                .rd(input)
                .body(move |ctx| {
                    let xs = ctx.rd(input);
                    *ctx.wr(p) = xs.iter().skip(i).step_by(8).map(|&x| x * x).sum();
                }),
        );
    }

    // Serial phase: the reduction declares reads of every partial sum, so
    // the synchronizer runs it after all of them — no explicit barrier.
    {
        let partial = partial.clone();
        let mut tb = TaskBuilder::new("reduce").wr(total);
        for &p in &partial {
            tb = tb.rd(p);
        }
        rt.submit(tb.body(move |ctx| {
            *ctx.wr(total) = partial.iter().map(|&p| *ctx.rd(p)).sum();
        }));
    }

    rt.finish();
    let got = *rt.store().read(total);
    let expect: u64 = (0..1_000u64).map(|x| x * x).sum();
    assert_eq!(got, expect);
    println!("sum of squares over 1000 elements = {got}");
    let s = rt.last_stats();
    println!(
        "executed {} tasks ({} on their locality target, {} stolen)",
        s.executed, s.locality_hits, s.steals
    );

    // The same numbers reconstruct from the structured event stream alone,
    // and the stream exports to Chrome's trace viewer (chrome://tracing or
    // ui.perfetto.dev). The machine simulators record the identical schema
    // via `jade::dash::run_traced` / `jade::ipsc::run_traced`, or
    // `repro --trace-out FILE` for a full application.
    let events = rt.take_events();
    let m = Metrics::from_events(&events, rt.workers());
    assert_eq!(m.tasks_started, s.executed);
    assert_eq!(m.steals as usize, s.steals);
    let mut json = Vec::new();
    chrome::write_chrome_trace(&mut json, &events).unwrap();
    let path = std::env::temp_dir().join("jade-quickstart-trace.json");
    std::fs::write(&path, &json).unwrap();
    println!(
        "recorded {} events; Chrome trace written to {}",
        events.len(),
        path.display()
    );
}
