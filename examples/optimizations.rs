//! Demonstrate each communication optimization of the paper in isolation
//! on the simulated iPSC/860, using Panel Cholesky and Water.
//!
//! Run with: `cargo run --release --example optimizations`

use jade::apps::{cholesky, water};
use jade::ipsc::{self, IpscConfig};
use jade::LocalityMode;

fn main() {
    let procs = 16;

    // --- Adaptive broadcast (Water's widely-read position object).
    let wcfg = water::WaterConfig {
        molecules: 512,
        iterations: 4,
        procs,
        seed: 7,
    };
    let (wtrace, _) = water::run_trace(&wcfg);
    let spo = water::calib::IPSC_STRIPPED_S / wtrace.total_work();
    let mk = |f: &dyn Fn(&mut IpscConfig)| {
        let mut c = IpscConfig::paper(procs, LocalityMode::Locality, spo);
        f(&mut c);
        ipsc::run(&wtrace, &c)
    };
    let on = mk(&|_| {});
    let off = mk(&|c| c.adaptive_broadcast = false);
    println!(
        "adaptive broadcast  (Water, {procs}p): {:>8.2}s on | {:>8.2}s off | {} broadcasts",
        on.exec_time_s, off.exec_time_s, on.broadcasts
    );

    // --- Replication (disabling it serializes the readers).
    let norep = mk(&|c| c.replication = false);
    println!(
        "replication         (Water, {procs}p): {:>8.2}s on | {:>8.2}s off ({}x slower)",
        on.exec_time_s,
        norep.exec_time_s,
        (norep.exec_time_s / on.exec_time_s).round()
    );

    // --- Locality + latency hiding + concurrent fetches (Cholesky).
    let ccfg = cholesky::CholeskyConfig {
        grid: 24,
        subassemblies: 2,
        iface: 24,
        panel_width: 4,
        procs,
    };
    let (ctrace, _) = cholesky::run_trace(&ccfg);
    let cspo = cholesky::calib::IPSC_STRIPPED_S / ctrace.total_work();
    let mkc = |mode: LocalityMode, f: &dyn Fn(&mut IpscConfig)| {
        let mut c = IpscConfig::paper(procs, mode, cspo);
        f(&mut c);
        ipsc::run(&ctrace, &c)
    };
    let tp = mkc(LocalityMode::TaskPlacement, &|_| {});
    let noloc = mkc(LocalityMode::NoLocality, &|_| {});
    println!("locality            (Chol., {procs}p): {:>8.2}s placed | {:>8.2}s none ({:.1} vs {:.1} MB moved)",
        tp.exec_time_s, noloc.exec_time_s,
        tp.comm_bytes as f64 / 1e6, noloc.comm_bytes as f64 / 1e6);

    let lh1 = mkc(LocalityMode::TaskPlacement, &|c| c.target_tasks = 1);
    let lh2 = mkc(LocalityMode::TaskPlacement, &|c| c.target_tasks = 2);
    println!(
        "latency hiding      (Chol., {procs}p): {:>8.2}s T=1 | {:>8.2}s T=2",
        lh1.exec_time_s, lh2.exec_time_s
    );

    let serial_fetch = mkc(LocalityMode::TaskPlacement, &|c| {
        c.concurrent_fetches = false
    });
    println!(
        "concurrent fetches  (Chol., {procs}p): {:>8.2}s on | {:>8.2}s serial fetches",
        tp.exec_time_s, serial_fetch.exec_time_s
    );
    println!("\n(the paper's finding: replication and locality matter most; broadcast helps\n Water; latency hiding and concurrent fetches barely move these applications)");
}
