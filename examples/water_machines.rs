//! Run the Water application on both simulated machines and print a
//! speedup table — a miniature of the paper's Tables 2 and 7.
//!
//! The same program text (`jade_apps::water::build`) produced the trace;
//! only the machine differs. Run with:
//! `cargo run --release --example water_machines [-- molecules iterations]`

use jade::apps::water::{self, WaterConfig};
use jade::LocalityMode;
use jade::{dash, ipsc};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let molecules = args.first().and_then(|s| s.parse().ok()).unwrap_or(512);
    let iterations = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("Water: {molecules} molecules, {iterations} iterations");
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12}",
        "procs", "DASH (s)", "speedup", "iPSC (s)", "speedup"
    );

    let mut dash1 = 0.0;
    let mut ipsc1 = 0.0;
    for procs in [1usize, 2, 4, 8, 16, 32] {
        let cfg = WaterConfig {
            molecules,
            iterations,
            procs,
            seed: 1995,
        };
        let (trace, _) = water::run_trace(&cfg);
        // Calibrate against the paper's measured serial times.
        let d = dash::run(
            &trace,
            &dash::DashConfig::paper(
                procs,
                LocalityMode::Locality,
                water::calib::DASH_STRIPPED_S / trace.total_work()
                    * (molecules as f64 / 1728.0).powi(0), // keep calibrated rate
            ),
        );
        let i = ipsc::run(
            &trace,
            &ipsc::IpscConfig::paper(
                procs,
                LocalityMode::Locality,
                water::calib::IPSC_STRIPPED_S / trace.total_work(),
            ),
        );
        if procs == 1 {
            dash1 = d.exec_time_s;
            ipsc1 = i.exec_time_s;
        }
        println!(
            "{:>6} | {:>12.2} {:>11.2}x | {:>12.2} {:>11.2}x",
            procs,
            d.exec_time_s,
            dash1 / d.exec_time_s,
            i.exec_time_s,
            ipsc1 / i.exec_time_s
        );
    }
}
